package mst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestDistributedMatchesKruskalProperty sweeps random diameters, sizes and
// weightings: the shortcut-framework MST must equal the Kruskal MST on every
// connected instance (unique by distinct weights).
func TestDistributedMatchesKruskalProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(4)
		n := 150 + rng.Intn(250)
		g, err := gen.ClusterChain(n, d, rng)
		if err != nil {
			return true // size/diameter combination invalid: skip
		}
		w := graph.NewUniformWeights(g.NumEdges(), rng)
		want, err := Kruskal(g, w)
		if err != nil {
			return false
		}
		res, err := Distributed(g, w, DistOptions{Rng: rng, Diameter: d})
		if err != nil {
			return false
		}
		return sameEdgeSet(res.Tree, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDistributedQualityHintPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := gen.ClusterChain(300, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.NewUniformWeights(g.NumEdges(), rng)
	res, err := Distributed(g, w, DistOptions{Rng: rng, Diameter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.QualitySum <= 0 {
		t.Errorf("QualitySum = %d, want > 0", res.QualitySum)
	}
}

func TestBoruvkaTreeIsSpanning(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(80, 0.05, rng)
		w := graph.NewUniformWeights(g.NumEdges(), rng)
		tree, _, err := Boruvka(g, w)
		if err != nil {
			return false
		}
		if len(tree) != g.NumNodes()-1 {
			return false
		}
		uf := NewUnionFind(g.NumNodes())
		for _, e := range tree {
			u, v := g.EdgeEndpoints(e)
			if !uf.Union(u, v) {
				return false // cycle in "tree"
			}
		}
		return uf.Count() == 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
