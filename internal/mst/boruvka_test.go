package mst_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mst"
)

// TestBoruvkaMatchesDistributed pins the centralized mirror bit-for-bit
// against the simulated distributed construction — same tree edges, same
// append order, same summed weight — across graph families, sizes, seeds and
// worker settings. This is the equivalence the dynamic snapshot path relies
// on: a repaired snapshot derives its tree from the mirror, a from-scratch
// rebuild from the simulation.
func TestBoruvkaMatchesDistributed(t *testing.T) {
	type tc struct {
		name string
		make func(n int, rng *rand.Rand) (*graph.Graph, error)
	}
	cases := []tc{
		{"cluster-chain", func(n int, rng *rand.Rand) (*graph.Graph, error) { return gen.ClusterChain(n, 6, rng) }},
		{"erdos-renyi", func(n int, rng *rand.Rand) (*graph.Graph, error) {
			for {
				g := gen.ErdosRenyi(n, 6/float64(n), rng)
				if graph.IsConnected(g) {
					return g, nil
				}
			}
		}},
		{"dumbbell", func(n int, rng *rand.Rand) (*graph.Graph, error) { return gen.Dumbbell(n/8, 4), nil }},
	}
	for _, c := range cases {
		for _, n := range []int{60, 400} {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g, err := c.make(n, rng)
				if err != nil {
					t.Fatalf("%s n=%d: %v", c.name, n, err)
				}
				w := graph.NewUniformWeights(g.NumEdges(), rng)
				dres, err := mst.Distributed(g, w, mst.DistOptions{
					Rng: rng, LogFactor: 0.3, Workers: int(seed % 3),
				})
				if err != nil {
					t.Fatalf("%s n=%d seed=%d: distributed: %v", c.name, n, seed, err)
				}
				tree, weight, err := mst.BoruvkaMirror(g, w)
				if err != nil {
					t.Fatalf("%s n=%d seed=%d: mirror: %v", c.name, n, seed, err)
				}
				if len(tree) != len(dres.Tree) {
					t.Fatalf("%s n=%d seed=%d: tree sizes %d vs %d", c.name, n, seed, len(tree), len(dres.Tree))
				}
				for i := range tree {
					if tree[i] != dres.Tree[i] {
						t.Fatalf("%s n=%d seed=%d: tree[%d] = %d vs %d (order or content drift)",
							c.name, n, seed, i, tree[i], dres.Tree[i])
					}
				}
				if weight != dres.Weight {
					t.Fatalf("%s n=%d seed=%d: weight %v vs %v", c.name, n, seed, weight, dres.Weight)
				}
			}
		}
	}
}

// TestBoruvkaMatchesKruskalWeight cross-checks optimality against the
// classical algorithm (same total weight; edge sets may order differently).
func TestBoruvkaMatchesKruskalWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var g *graph.Graph
	for {
		g = gen.ErdosRenyi(300, 0.03, rng)
		if graph.IsConnected(g) {
			break
		}
	}
	w := graph.NewUniformWeights(g.NumEdges(), rng)
	want, err := mst.Kruskal(g, w)
	if err != nil {
		t.Fatal(err)
	}
	tree, weight, err := mst.BoruvkaMirror(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != len(want) {
		t.Fatalf("tree sizes %d vs %d", len(tree), len(want))
	}
	if math.Abs(weight-w.Total(want)) > 1e-9 {
		t.Fatalf("weights %v vs %v", weight, w.Total(want))
	}
}

// TestBoruvkaForest covers the disconnected (spanning forest) path.
func TestBoruvkaForest(t *testing.T) {
	b := graph.NewBuilder(6)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	w := graph.Weights{1, 2, 3, 4}
	tree, _, err := mst.BoruvkaMirror(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 4 {
		t.Fatalf("forest has %d edges, want 4", len(tree))
	}
}
