package mst

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func randomConnected(seed int64, n int, extra float64) (*graph.Graph, graph.Weights) {
	rng := rand.New(rand.NewSource(seed))
	g := gen.ErdosRenyi(n, extra, rng)
	return g, graph.NewUniformWeights(g.NumEdges(), rng)
}

func sortedEdges(edges []graph.EdgeID) []graph.EdgeID {
	out := make([]graph.EdgeID, len(edges))
	copy(out, edges)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameEdgeSet(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	sa, sb := sortedEdges(a), sortedEdges(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("Count = %d", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions failed")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union succeeded")
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(2) != uf.Find(3) {
		t.Error("find after union inconsistent")
	}
	if uf.Find(0) == uf.Find(2) {
		t.Error("separate sets merged")
	}
	if uf.Count() != 3 {
		t.Errorf("Count = %d, want 3", uf.Count())
	}
}

func TestKruskalSmallKnown(t *testing.T) {
	// Triangle with weights 1, 2, 3: MST is the two lightest edges.
	g, err := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	w := graph.Weights{1, 2, 3}
	tree, err := Kruskal(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 2 || w.Total(tree) != 3 {
		t.Errorf("tree = %v (weight %f), want weight 3", tree, w.Total(tree))
	}
}

func TestKruskalPrimBoruvkaAgree(t *testing.T) {
	check := func(seed int64) bool {
		g, w := randomConnected(seed, 60, 0.06)
		k, err := Kruskal(g, w)
		if err != nil {
			return false
		}
		p, err := Prim(g, w)
		if err != nil {
			return false
		}
		b, _, err := Boruvka(g, w)
		if err != nil {
			return false
		}
		return sameEdgeSet(k, p) && sameEdgeSet(k, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestKruskalSpanningForest(t *testing.T) {
	// Two components: result must be a spanning forest with n-2 edges.
	b := graph.NewBuilder(6)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	w := graph.NewUnitWeights(g.NumEdges())
	tree, err := Kruskal(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree) != 4 {
		t.Errorf("forest edges = %d, want 4", len(tree))
	}
}

func TestBoruvkaPhasesLogBound(t *testing.T) {
	g, w := randomConnected(3, 128, 0.05)
	_, phases, err := Boruvka(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if phases > 8 { // log2(128) = 7, one slack
		t.Errorf("phases = %d, want <= 8", phases)
	}
}

func TestWeightsValidationPropagates(t *testing.T) {
	g := gen.Path(4)
	bad := graph.Weights{1} // wrong length
	if _, err := Kruskal(g, bad); err == nil {
		t.Error("Kruskal accepted invalid weights")
	}
	if _, err := Prim(g, bad); err == nil {
		t.Error("Prim accepted invalid weights")
	}
	if _, _, err := Boruvka(g, bad); err == nil {
		t.Error("Boruvka accepted invalid weights")
	}
}

func TestDistributedMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := gen.ClusterChain(400, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.NewUniformWeights(g.NumEdges(), rng)
	want, err := Kruskal(g, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(g, w, DistOptions{Rng: rng, Diameter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdgeSet(res.Tree, want) {
		t.Errorf("distributed MST differs from Kruskal: weight %f vs %f",
			res.Weight, w.Total(want))
	}
	if res.Phases < 1 || res.Rounds < 1 || res.Messages < 1 {
		t.Errorf("stats missing: %+v", res)
	}
}

func TestDistributedBaselineAlsoCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := gen.ClusterChain(300, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.NewUniformWeights(g.NumEdges(), rng)
	want, err := Kruskal(g, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(g, w, DistOptions{Rng: rng, Diameter: 5, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdgeSet(res.Tree, want) {
		t.Error("baseline distributed MST differs from Kruskal")
	}
}

func TestDistributedWithSimulatedConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := gen.ClusterChain(200, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.NewUniformWeights(g.NumEdges(), rng)
	want, err := Kruskal(g, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(g, w, DistOptions{
		Rng:                  rng,
		Diameter:             4,
		SimulateConstruction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdgeSet(res.Tree, want) {
		t.Error("simulated-construction MST differs from Kruskal")
	}
	// Full simulation must charge strictly more rounds than framework-only.
	res2, err := Distributed(g, w, DistOptions{Rng: rand.New(rand.NewSource(6)), Diameter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= res2.Rounds {
		t.Errorf("simulated construction rounds %d not above framework-only %d", res.Rounds, res2.Rounds)
	}
}

func TestDistributedOnHardInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hi, err := gen.NewHardInstance(800, 4, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := graph.NewUniformWeights(hi.G.NumEdges(), rng)
	want, err := Kruskal(hi.G, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Distributed(hi.G, w, DistOptions{Rng: rng, Diameter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameEdgeSet(res.Tree, want) {
		t.Error("distributed MST differs from Kruskal on hard instance")
	}
}

func TestDistributedRequiresRng(t *testing.T) {
	g := gen.Path(4)
	w := graph.NewUnitWeights(g.NumEdges())
	if _, err := Distributed(g, w, DistOptions{}); err == nil {
		t.Error("missing Rng accepted")
	}
}

func TestDistributedDisconnectedForest(t *testing.T) {
	b := graph.NewBuilder(8)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	rng := rand.New(rand.NewSource(8))
	w := graph.NewUniformWeights(g.NumEdges(), rng)
	res, err := Distributed(g, w, DistOptions{Rng: rng, Diameter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tree) != 6 {
		t.Errorf("forest edges = %d, want 6", len(res.Tree))
	}
}
