// Package mst implements minimum spanning tree algorithms: centralized
// baselines (Kruskal, Prim, Borůvka) and the distributed Borůvka-through-
// shortcuts algorithm of the Ghaffari–Haeupler framework [GH16, Gha17] that
// Corollary 1.2 instantiates with the paper's shortcuts — MST in ˜O(kD)
// rounds on constant-diameter graphs.
package mst

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/reproerr"
)

// UnionFind is a standard disjoint-set forest with path compression and
// union by rank.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, reporting whether a merge happened.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Kruskal computes the MST (or minimum spanning forest) edge set by sorting
// edges and greedily merging components. With distinct weights the MST is
// unique, making Kruskal the correctness oracle for the distributed
// algorithm.
func Kruskal(g *graph.Graph, w graph.Weights) ([]graph.EdgeID, error) {
	if err := w.Validate(g); err != nil {
		return nil, reproerr.New("mst", reproerr.KindInvalidInput, err)
	}
	order := make([]graph.EdgeID, g.NumEdges())
	for e := range order {
		order[e] = graph.EdgeID(e)
	}
	sort.Slice(order, func(i, j int) bool {
		if w[order[i]] != w[order[j]] {
			return w[order[i]] < w[order[j]]
		}
		return order[i] < order[j]
	})
	uf := NewUnionFind(g.NumNodes())
	tree := make([]graph.EdgeID, 0, g.NumNodes()-1)
	for _, e := range order {
		u, v := g.EdgeEndpoints(e)
		if uf.Union(u, v) {
			tree = append(tree, e)
		}
	}
	return tree, nil
}

// Prim computes the MST of a connected graph starting from node 0 using a
// binary heap. It serves as an independent second oracle.
func Prim(g *graph.Graph, w graph.Weights) ([]graph.EdgeID, error) {
	if err := w.Validate(g); err != nil {
		return nil, reproerr.New("mst", reproerr.KindInvalidInput, err)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	inTree := make([]bool, n)
	h := &edgeHeap{w: w}
	pushArcs := func(u graph.NodeID) {
		g.Arcs(u, func(_ int32, v graph.NodeID, e graph.EdgeID) bool {
			if !inTree[v] {
				h.push(heapItem{edge: e, to: v})
			}
			return true
		})
	}
	inTree[0] = true
	pushArcs(0)
	tree := make([]graph.EdgeID, 0, n-1)
	for h.len() > 0 {
		item := h.pop()
		if inTree[item.to] {
			continue
		}
		inTree[item.to] = true
		tree = append(tree, item.edge)
		pushArcs(item.to)
	}
	return tree, nil
}

type heapItem struct {
	edge graph.EdgeID
	to   graph.NodeID
}

// edgeHeap is a minimal binary min-heap keyed by edge weight with EdgeID
// tie-breaking (deterministic with duplicate weights).
type edgeHeap struct {
	w     graph.Weights
	items []heapItem
}

func (h *edgeHeap) len() int { return len(h.items) }

func (h *edgeHeap) less(i, j int) bool {
	wi, wj := h.w[h.items[i].edge], h.w[h.items[j].edge]
	if wi != wj {
		return wi < wj
	}
	return h.items[i].edge < h.items[j].edge
}

func (h *edgeHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *edgeHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// Boruvka computes the MST by repeated minimum-weight-outgoing-edge (MWOE)
// contraction — the centralized skeleton of the distributed algorithm. It
// returns the tree edges and the number of phases (≤ ⌈log2 n⌉ on connected
// graphs).
func Boruvka(g *graph.Graph, w graph.Weights) ([]graph.EdgeID, int, error) {
	if err := w.Validate(g); err != nil {
		return nil, 0, reproerr.New("mst", reproerr.KindInvalidInput, err)
	}
	n := g.NumNodes()
	uf := NewUnionFind(n)
	tree := make([]graph.EdgeID, 0, n-1)
	phases := 0
	for {
		best := make(map[int32]graph.EdgeID)
		for e := 0; e < g.NumEdges(); e++ {
			u, v := g.EdgeEndpoints(graph.EdgeID(e))
			ru, rv := uf.Find(u), uf.Find(v)
			if ru == rv {
				continue
			}
			for _, r := range [2]int32{ru, rv} {
				cur, ok := best[r]
				if !ok || w[graph.EdgeID(e)] < w[cur] ||
					(w[graph.EdgeID(e)] == w[cur] && graph.EdgeID(e) < cur) {
					best[r] = graph.EdgeID(e)
				}
			}
		}
		if len(best) == 0 {
			break
		}
		phases++
		merged := false
		for _, e := range best {
			u, v := g.EdgeEndpoints(e)
			if uf.Union(u, v) {
				tree = append(tree, e)
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	return tree, phases, nil
}

// TotalWeight sums the weights of an edge set.
func TotalWeight(w graph.Weights, edges []graph.EdgeID) float64 {
	return w.Total(edges)
}
