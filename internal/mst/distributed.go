package mst

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/reproerr"
	"repro/internal/sched"
	"repro/internal/shortcut"
)

// DistOptions configures the distributed MST computation.
type DistOptions struct {
	// Rng drives shortcut sampling and scheduling. Required.
	Rng *rand.Rand
	// Diameter is the graph diameter used to derive shortcut parameters
	// (0 = double-sweep estimate).
	Diameter int
	// LogFactor as in shortcut.Options.
	LogFactor float64
	// Baseline selects the GH16 O(D+√n) shortcuts instead of the paper's
	// construction — the comparison arm of experiment E6.
	Baseline bool
	// SimulateConstruction additionally simulates the distributed shortcut
	// construction every phase (full round accounting, slower). When false,
	// shortcuts are computed centrally and only the framework phases (MWOE
	// convergecast, result broadcast, fragment-ID exchange) are simulated
	// and charged — the per-phase costs that dominate the framework.
	SimulateConstruction bool
	// Workers selects the execution parallelism of the simulated
	// construction phases (congest.Options) and of the random-delay
	// scheduled MWOE phases (sched.Options); 0 = sequential. All settings
	// produce identical results.
	Workers int
	// DepthFactor as in shortcut.DistOptions (0 = 2).
	DepthFactor float64
	// MaxRounds bounds each scheduled phase (0 = default).
	MaxRounds int
	// Ctx, when non-nil, cancels the computation cooperatively: every
	// simulated round barrier and scheduler drain step checks it, so the
	// run aborts within one round of cancellation with a
	// reproerr.KindCanceled/KindDeadline error.
	Ctx context.Context
}

// DistResult reports the distributed MST outcome with cost accounting.
type DistResult struct {
	Tree   []graph.EdgeID
	Weight float64
	Phases int
	// Cost is the unified v2 accounting. Rounds/Messages aggregate all
	// simulated phases (when SimulateConstruction is false the shortcut-
	// construction rounds are excluded, documented in EXPERIMENTS.md);
	// SchedStats carries the last scheduled phase's realized drain stats
	// plus the worst per-arc load and queueing across all phases; Wall is
	// the real duration. Field promotion keeps v1 accessors intact.
	cost.Cost
	// QualitySum records the worst shortcut quality (c + d upper bound)
	// observed across phases, the quantity Fact 4.1 ties the round
	// complexity to.
	QualitySum int
}

// Scratch owns the reusable scheduler state of Distributed: the random-delay
// Runner, the BFS extraction forest, and the winners buffer. The zero value
// is ready to use. Distributed allocates a fresh one per call; callers that
// answer many MST-shaped queries (the serving layer's pooled executors) hold
// one Scratch per executor and call DistributedScratch so the scheduler's
// flat buffers amortize across queries, not just across Borůvka phases.
// A Scratch must not be used concurrently.
type Scratch struct {
	sr      sched.Runner
	forest  sched.BFSForest
	winners []sched.AggValue
}

// Distributed computes the MST with Borůvka phases driven by low-congestion
// shortcuts (Fact 4.1 / Corollary 1.2): each phase builds shortcuts for the
// current fragment partition, grows BFS trees in every augmented subgraph
// under random-delay scheduling, convergecasts each fragment's minimum-
// weight outgoing edge, broadcasts the winners, and merges.
func Distributed(g *graph.Graph, w graph.Weights, opts DistOptions) (*DistResult, error) {
	var scratch Scratch
	return DistributedScratch(g, w, opts, &scratch)
}

// DistributedScratch is Distributed with caller-owned reusable state — the
// snapshot-serving entry point. Results are identical to Distributed.
func DistributedScratch(g *graph.Graph, w graph.Weights, opts DistOptions, scratch *Scratch) (*DistResult, error) {
	const op = "mst.Distributed"
	if err := reproerr.RequireRng(op, opts.Rng); err != nil {
		return nil, err
	}
	if err := w.Validate(g); err != nil {
		return nil, reproerr.New(op, reproerr.KindInvalidInput, err)
	}
	start := time.Now()
	n := g.NumNodes()
	if n == 0 {
		return &DistResult{}, nil
	}
	d := opts.Diameter
	if d == 0 {
		lo, _ := graph.DiameterBounds(g)
		d = int(lo)
		if d < 1 {
			d = 1
		}
	}
	depthFactor := opts.DepthFactor
	if depthFactor <= 0 {
		depthFactor = 2
	}

	res := &DistResult{}
	uf := NewUnionFind(n)
	// Scheduler state reused across phases — and, via DistributedScratch,
	// across whole queries (runner, extraction forest, winners buffer):
	// allocation-free steady state.
	sr := &scratch.sr
	forest := &scratch.forest
	winners := scratch.winners

	for {
		fragments := fragmentLists(g, uf)
		if len(fragments) <= 1 {
			break
		}
		p, err := shortcut.NewPartition(g, fragments)
		if err != nil {
			return nil, fmt.Errorf("mst: phase %d partition: %w", res.Phases, err)
		}

		var sc *shortcut.Shortcuts
		switch {
		case opts.Baseline:
			sc = shortcut.GhaffariHaeupler(p, 0)
			// Charge the baseline's construction: one global BFS.
			res.AddSim(int(sc.Params.Diameter), int64(g.NumEdges()))
		case opts.SimulateConstruction:
			dres, err := shortcut.BuildDistributed(g, p, shortcut.DistOptions{
				Rng:           opts.Rng,
				LogFactor:     opts.LogFactor,
				KnownDiameter: d,
				DepthFactor:   depthFactor,
				MaxRounds:     opts.MaxRounds,
				Workers:       opts.Workers,
				Ctx:           opts.Ctx,
			})
			if err != nil {
				return nil, fmt.Errorf("mst: phase %d shortcuts: %w", res.Phases, err)
			}
			sc = dres.S
			res.AddSim(dres.Rounds, dres.Messages)
		default:
			sc, err = shortcut.Build(g, p, shortcut.Options{
				Diameter:  d,
				LogFactor: opts.LogFactor,
				Rng:       opts.Rng,
				Ctx:       opts.Ctx,
			})
			if err != nil {
				return nil, fmt.Errorf("mst: phase %d shortcuts: %w", res.Phases, err)
			}
		}

		// One round in which neighbors exchange fragment IDs, so that every
		// node knows which incident edges are outgoing.
		res.AddSim(1, int64(g.NumArcs()))

		var qualityHint int
		winners, qualityHint, err = mwoePhase(g, w, p, sc, uf, depthFactor, opts, sr, forest, winners, res)
		scratch.winners = winners
		if err != nil {
			return nil, fmt.Errorf("mst: phase %d MWOE: %w", res.Phases, err)
		}
		if qualityHint > res.QualitySum {
			res.QualitySum = qualityHint
		}

		merged := false
		for _, e := range winners {
			if !e.Valid {
				continue
			}
			u, v := g.EdgeEndpoints(e.Edge)
			if uf.Union(u, v) {
				res.Tree = append(res.Tree, e.Edge)
				merged = true
			}
		}
		res.Phases++
		if !merged {
			break // disconnected graph: spanning forest complete
		}
	}
	res.Weight = w.Total(res.Tree)
	res.Wall = time.Since(start)
	return res, nil
}

// mwoePhase grows BFS trees in the augmented subgraphs, convergecasts the
// fragment MWOEs and broadcasts the winners, charging all simulated rounds.
func mwoePhase(
	g *graph.Graph,
	w graph.Weights,
	p *shortcut.Partition,
	sc *shortcut.Shortcuts,
	uf *UnionFind,
	depthFactor float64,
	opts DistOptions,
	sr *sched.Runner,
	forest *sched.BFSForest,
	winners []sched.AggValue,
	res *DistResult,
) ([]sched.AggValue, int, error) {
	n := g.NumNodes()
	kd := sc.Params.KD
	if kd < 1 {
		kd = math.Sqrt(float64(n)) // baseline shortcuts: GH threshold scale
	}
	depthLimit := int32(math.Ceil(depthFactor*kd*math.Log2(float64(n)))) + 1

	// Per-part allowed-edge bitsets: Hi plus the induced intra-part edges.
	numParts := p.NumParts()
	tasks := make([]sched.BFSTask, numParts)
	for i := 0; i < numParts; i++ {
		pi := int32(i)
		if len(sc.H[i]) == 0 {
			// Small part: the augmented subgraph is just G[Si]; checking
			// part membership avoids allocating a bitset per fragment
			// (critical in early Borůvka phases with Θ(n) fragments).
			tasks[i] = sched.BFSTask{
				Root: p.Part(i).Leader,
				Allowed: func(_ int32, u, v graph.NodeID, _ graph.EdgeID) bool {
					return p.PartOf(u) == pi && p.PartOf(v) == pi
				},
				DepthLimit: depthLimit,
			}
			continue
		}
		allowed := graph.NewBitset(g.NumEdges())
		for _, e := range sc.H[i] {
			allowed.Set(e)
		}
		for _, u := range p.Part(i).Nodes {
			g.Arcs(u, func(_ int32, v graph.NodeID, e graph.EdgeID) bool {
				if p.PartOf(v) == pi {
					allowed.Set(e)
				}
				return true
			})
		}
		a := allowed
		tasks[i] = sched.BFSTask{
			Root:       p.Part(i).Leader,
			Allowed:    func(_ int32, _, _ graph.NodeID, e graph.EdgeID) bool { return a.Has(e) },
			DepthLimit: depthLimit,
		}
	}
	st, err := sr.ParallelBFSInto(forest, g, tasks, sched.Options{
		MaxDelay:  int(math.Ceil(kd)),
		Rng:       opts.Rng,
		MaxRounds: opts.MaxRounds,
		Workers:   opts.Workers,
		Ctx:       opts.Ctx,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("scheduled BFS: %w", err)
	}
	out := forest
	res.AddSched(st)

	// Dilation realized by the trees + realized congestion ⇒ quality hint.
	var deepest int32
	for i := 0; i < out.NumTasks(); i++ {
		o := out.Outcome(i)
		for j := 0; j < o.Len(); j++ {
			if dist := o.DistAt(j); dist > deepest {
				deepest = dist
			}
		}
	}
	qualityHint := st.MaxArcLoad + int(deepest)

	aggTasks := make([]sched.AggTask, numParts)
	for i := 0; i < numParts; i++ {
		o := out.Outcome(i)
		local := make([]sched.AggValue, o.Len())
		for j := range local {
			v := o.Node(j)
			best := sched.AggValue{}
			if p.PartOf(v) == int32(i) {
				rv := uf.Find(v)
				g.Arcs(v, func(_ int32, u graph.NodeID, e graph.EdgeID) bool {
					if uf.Find(u) == rv {
						return true
					}
					cand := sched.AggValue{Weight: w[e], Edge: e, Valid: true}
					if cand.Better(best) {
						best = cand
					}
					return true
				})
			}
			local[j] = best
		}
		aggTasks[i] = sched.AggTask{
			Root:  p.Part(i).Leader,
			Tree:  o,
			Local: local,
		}
	}
	winners, st2, err := sr.ParallelMinAggregateInto(winners, g, aggTasks, sched.Options{
		MaxDelay:  int(math.Ceil(kd)),
		Rng:       opts.Rng,
		MaxRounds: opts.MaxRounds,
		Workers:   opts.Workers,
		Ctx:       opts.Ctx,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("MWOE aggregate: %w", err)
	}
	res.AddSched(st2)
	return winners, qualityHint, nil
}

// fragmentLists groups nodes into their current fragments.
func fragmentLists(g *graph.Graph, uf *UnionFind) [][]graph.NodeID {
	n := g.NumNodes()
	byRoot := make(map[int32][]graph.NodeID)
	for v := 0; v < n; v++ {
		r := uf.Find(int32(v))
		byRoot[r] = append(byRoot[r], graph.NodeID(v))
	}
	out := make([][]graph.NodeID, 0, len(byRoot))
	// Deterministic order: fragments appear by their smallest member
	// (node IDs are scanned in increasing order).
	seen := make(map[int32]bool, len(byRoot))
	for v := 0; v < n; v++ {
		r := uf.Find(int32(v))
		if !seen[r] {
			seen[r] = true
			out = append(out, byRoot[r])
		}
	}
	return out
}
