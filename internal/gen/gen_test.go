package gen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestPathCycleStar(t *testing.T) {
	p := Path(5)
	if p.NumEdges() != 4 || graph.Diameter(p) != 4 {
		t.Errorf("path: m=%d diam=%d", p.NumEdges(), graph.Diameter(p))
	}
	c := Cycle(6)
	if c.NumEdges() != 6 || graph.Diameter(c) != 3 {
		t.Errorf("cycle: m=%d diam=%d", c.NumEdges(), graph.Diameter(c))
	}
	s := Star(10)
	if s.NumEdges() != 9 || graph.Diameter(s) != 2 {
		t.Errorf("star: m=%d diam=%d", s.NumEdges(), graph.Diameter(s))
	}
}

func TestComplete(t *testing.T) {
	k := Complete(6)
	if k.NumEdges() != 15 {
		t.Errorf("K6 edges = %d, want 15", k.NumEdges())
	}
	if graph.Diameter(k) != 1 {
		t.Errorf("K6 diameter = %d, want 1", graph.Diameter(k))
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Errorf("grid nodes = %d, want 12", g.NumNodes())
	}
	// 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
	if g.NumEdges() != 17 {
		t.Errorf("grid edges = %d, want 17", g.NumEdges())
	}
	if d := graph.Diameter(g); d != 5 {
		t.Errorf("grid diameter = %d, want 5", d)
	}
}

func TestRandomTreeConnectedAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(50) + 2
		g := RandomTree(n, rng)
		if !graph.IsConnected(g) {
			t.Fatal("random tree disconnected")
		}
		if g.NumEdges() != n-1 {
			t.Fatalf("random tree edges = %d, want %d", g.NumEdges(), n-1)
		}
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(60, 0.05, rng)
	if !graph.IsConnected(g) {
		t.Error("ER graph should be connected (spanning tree backbone)")
	}
	if g.NumEdges() < 59 {
		t.Errorf("ER graph edges = %d, want >= 59", g.NumEdges())
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(5, 4)
	if !graph.IsConnected(g) {
		t.Fatal("dumbbell disconnected")
	}
	// Diameter: clique hop (1) + bridge (4) + clique hop (1) = 6.
	if d := graph.Diameter(g); d != 6 {
		t.Errorf("dumbbell diameter = %d, want 6", d)
	}
}

func TestClusterChainDiameters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 8} {
		g, err := ClusterChain(400, d, rng)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		if !graph.IsConnected(g) {
			t.Fatalf("D=%d: disconnected", d)
		}
		if got := int(graph.Diameter(g)); got != d {
			t.Errorf("D=%d: diameter = %d", d, got)
		}
		if !ClusterChainDiameterHolds(g, d) {
			t.Errorf("D=%d: ClusterChainDiameterHolds = false on a correct graph", d)
		}
	}
}

func TestClusterChainSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := ClusterChain(10000, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() > 3*g.NumNodes() {
		t.Errorf("cluster chain too dense: m=%d for n=%d", g.NumEdges(), g.NumNodes())
	}
}

func TestClusterChainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := ClusterChain(100, 0, rng); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := ClusterChain(3, 10, rng); err == nil {
		t.Error("n too small accepted")
	}
}

func TestKD(t *testing.T) {
	// D=3: exponent 1/4; D=4: 1/3; D→∞: → 1/2.
	if got := KD(10000, 3); got < 9.9 || got > 10.1 {
		t.Errorf("KD(10000,3) = %v, want ~10", got)
	}
	if got := KD(2, 2); got != 1 {
		t.Errorf("KD(·,2) = %v, want 1", got)
	}
	if KD(10000, 4) <= KD(10000, 3) {
		t.Error("kD must increase with D")
	}
	if KD(10000, 20) >= 100 {
		t.Error("kD must stay below sqrt(n)")
	}
}

func TestHardInstanceStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, d := range []int{3, 4, 5, 6, 7, 8} {
		hi, err := NewHardInstance(3000, d, 0, 0, rng)
		if err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		g := hi.G
		if !graph.IsConnected(g) {
			t.Fatalf("D=%d: disconnected", d)
		}
		if len(hi.Paths) == 0 {
			t.Fatalf("D=%d: no paths", d)
		}
		// Paths must be vertex-disjoint and connected.
		seen := graph.NewBitset(g.NumNodes())
		for _, p := range hi.Paths {
			if len(p) != hi.PathLen {
				t.Fatalf("D=%d: path length %d, want %d", d, len(p), hi.PathLen)
			}
			for _, v := range p {
				if seen.Has(v) {
					t.Fatalf("D=%d: node %d on two paths", d, v)
				}
				seen.Set(v)
			}
			if !graph.IsNodeSetConnected(g, p) {
				t.Fatalf("D=%d: path not connected in induced subgraph", d)
			}
		}
		// Diameter within [something, D]: upper bound must be respected.
		lo, _ := graph.DiameterBounds(g)
		if int(lo) > d {
			t.Errorf("D=%d: diameter lower bound %d exceeds target", d, lo)
		}
		// Exact check on moderate n is affordable here.
		if exact := int(graph.Diameter(g)); exact != d {
			t.Errorf("D=%d: exact diameter = %d", d, exact)
		}
		// Paths must be "large" parts: longer than kD.
		if float64(hi.PathLen) <= KD(g.NumNodes(), d) {
			t.Errorf("D=%d: path length %d not > kD=%v", d, hi.PathLen, KD(g.NumNodes(), d))
		}
	}
}

func TestHardInstanceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NewHardInstance(1000, 2, 0, 0, rng); err == nil {
		t.Error("D=2 accepted")
	}
	if _, err := NewHardInstance(10, 8, 0, 0, rng); err == nil {
		t.Error("tiny n accepted")
	}
}

func TestVoronoiParts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := ErdosRenyi(200, 0.03, rng)
	parts, err := VoronoiParts(g, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 8 {
		t.Fatalf("parts = %d, want 8", len(parts))
	}
	seen := graph.NewBitset(g.NumNodes())
	total := 0
	for i, p := range parts {
		if len(p) == 0 {
			t.Fatalf("part %d empty", i)
		}
		total += len(p)
		for _, v := range p {
			if seen.Has(v) {
				t.Fatalf("node %d in two parts", v)
			}
			seen.Set(v)
		}
		if !graph.IsNodeSetConnected(g, p) {
			t.Fatalf("part %d not connected", i)
		}
	}
	if total != g.NumNodes() {
		t.Errorf("parts cover %d of %d nodes", total, g.NumNodes())
	}
}

func TestVoronoiPartsClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Path(5)
	parts, err := VoronoiParts(g, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Errorf("parts = %d, want 5 (clamped)", len(parts))
	}
}

func TestVoronoiPartsDisconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	// With a single seed, the other component is unreachable and the
	// generator must refuse. (With k ≥ 2 seeds may land in both components,
	// which yields a legitimate partition.)
	if _, err := VoronoiParts(b.Build(), 1, rng); err == nil {
		t.Error("disconnected graph with unreachable nodes accepted")
	}
}

func TestPathSegments(t *testing.T) {
	parts := PathSegments(10, 4)
	if len(parts) != 3 {
		t.Fatalf("segments = %d, want 3", len(parts))
	}
	if len(parts[0]) != 4 || len(parts[2]) != 2 {
		t.Errorf("segment sizes = %d,%d,%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
}

func TestLargestParts(t *testing.T) {
	parts := [][]graph.NodeID{{0}, {1, 2, 3}, {4, 5}}
	out := LargestParts(parts, 2)
	if len(out) != 2 || len(out[0]) != 3 || len(out[1]) != 2 {
		t.Errorf("LargestParts = %v", out)
	}
}
