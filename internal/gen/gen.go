// Package gen provides the synthetic graph and partition generators used by
// the experiments. Two families matter most for the paper's claims:
//
//   - ClusterChain(n, D): connected n-vertex graphs with unweighted diameter
//     exactly D and Θ(n) edges, the "typical constant-diameter network"
//     workload (stand-in for six-degrees social networks and the D≤19 web
//     graph the paper's introduction motivates).
//
//   - HardInstance(n, D): Elkin/Lotker-style lower-bound-shaped instances —
//     ℓ vertex-disjoint long paths at the bottom of a (D/2)-layer random
//     bipartite stack under a single root, so that shortcutting the paths
//     forces traffic through the sampled inter-layer edges. These drive the
//     quality experiments (E1, E3–E5, E9).
//
// All generators are deterministic given their *rand.Rand.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Path returns the path graph on n ≥ 1 nodes: 0-1-…-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		mustAdd(b, int32(i), int32(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle graph on n ≥ 3 nodes.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		mustAdd(b, int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Star returns the star on n ≥ 1 nodes with node 0 as the hub.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		mustAdd(b, 0, int32(i))
	}
	return b.Build()
}

// Complete returns the complete graph K_n (diameter 1 for n ≥ 2).
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(b, int32(i), int32(j))
		}
	}
	return b.Build()
}

// Grid returns the rows×cols king-free grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(b, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(b, id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// RandomTree returns a uniformly random recursive tree on n nodes: node i
// attaches to a uniform node in [0, i).
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		mustAdd(b, int32(rng.Intn(i)), int32(i))
	}
	return b.Build()
}

// ErdosRenyi returns a connected G(n, p)-style graph: a random spanning tree
// is laid down first (guaranteeing connectivity) and every remaining pair is
// added independently with probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		mustAdd(b, int32(rng.Intn(i)), int32(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !b.HasEdge(int32(i), int32(j)) && rng.Float64() < p {
				mustAdd(b, int32(i), int32(j))
			}
		}
	}
	return b.Build()
}

// Dumbbell returns two cliques of size k joined by a path of `bridge` edges.
// It is the classic example where a partition into the two cliques needs no
// shortcuts but a partition into path-crossing parts does.
func Dumbbell(k, bridge int) *graph.Graph {
	n := 2*k + bridge - 1
	b := graph.NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			mustAdd(b, int32(i), int32(j))
		}
	}
	right := k + bridge - 1
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			mustAdd(b, int32(right+i), int32(right+j))
		}
	}
	prev := int32(k - 1)
	for i := 0; i < bridge; i++ {
		next := int32(k + i)
		mustAdd(b, prev, next)
		prev = next
	}
	return b.Build()
}

func mustAdd(b *graph.Builder, u, v int32) {
	if err := b.AddEdge(u, v); err != nil {
		// Generators only call mustAdd with structurally valid fresh edges;
		// a failure is a bug in the generator itself.
		panic(fmt.Sprintf("gen: internal error adding edge {%d,%d}: %v", u, v, err))
	}
}
