package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ClusterChain returns a connected graph on n vertices with unweighted
// diameter exactly D and Θ(n) edges.
//
// Construction: for D ≥ 2, a chain of k = D-1 clusters. Each cluster has a
// hub; members attach to their hub (so intra-cluster distance ≤ 2) plus a few
// random intra-cluster edges. Consecutive hubs are joined, and a sparse
// random member-member matching links consecutive clusters. The extremal
// pairs (members of the first and last clusters without lucky matchings) are
// at distance exactly 1 + (k-1) + 1 = D, and no pair is farther.
//
// For D == 1 the complete graph is returned (diameter 1 requires it).
// n must be at least 2·max(D-1, 1) so every cluster is non-trivial.
func ClusterChain(n, d int, rng *rand.Rand) (*graph.Graph, error) {
	if d < 1 {
		return nil, fmt.Errorf("cluster chain: diameter %d < 1", d)
	}
	if d == 1 {
		if n < 2 {
			return nil, fmt.Errorf("cluster chain: n=%d too small for D=1", n)
		}
		return Complete(n), nil
	}
	k := d - 1
	if n < 2*k {
		return nil, fmt.Errorf("cluster chain: n=%d too small for D=%d (need ≥ %d)", n, d, 2*k)
	}
	b := graph.NewBuilder(n)
	// Slice the vertex range into k clusters of near-equal size. Node layout
	// per cluster: [start] is the hub, [start+1, end) are the members.
	starts := make([]int, k+1)
	for i := 0; i <= k; i++ {
		starts[i] = i * n / k
	}
	hubs := make([]int32, k)
	for c := 0; c < k; c++ {
		start, end := starts[c], starts[c+1]
		hub := int32(start)
		hubs[c] = hub
		for v := start + 1; v < end; v++ {
			mustAdd(b, hub, int32(v))
		}
		// A few random intra-cluster member edges for route diversity.
		size := end - start
		for t := 0; t < size/4; t++ {
			u := int32(start + rng.Intn(size))
			v := int32(start + rng.Intn(size))
			if u != v {
				b.TryAddEdge(u, v)
			}
		}
	}
	for c := 0; c+1 < k; c++ {
		mustAdd(b, hubs[c], hubs[c+1])
		// Sparse random member-member links between consecutive clusters.
		loSize := starts[c+1] - starts[c]
		hiSize := starts[c+2] - starts[c+1]
		links := min(loSize, hiSize) / 4
		for t := 0; t < links; t++ {
			u := int32(starts[c] + rng.Intn(loSize))
			v := int32(starts[c+1] + rng.Intn(hiSize))
			b.TryAddEdge(u, v)
		}
	}
	return b.Build(), nil
}

// ClusterChainDiameterHolds verifies (exactly, via two sweeps plus targeted
// BFS from extremal members) that a ClusterChain graph has diameter d. It is
// exposed so tests and experiment setup can assert the generator contract
// without an O(n²) exact diameter computation.
func ClusterChainDiameterHolds(g *graph.Graph, d int) bool {
	lo, hi := graph.DiameterBounds(g)
	if int(hi) < d {
		return false
	}
	if int(lo) > d {
		return false
	}
	if int(lo) == d {
		return true
	}
	// lo < d ≤ hi: fall back to a handful of BFS probes from the lowest and
	// highest node IDs (extreme clusters by construction).
	n := g.NumNodes()
	probes := []int32{0, 1, int32(n - 1), int32(n - 2)}
	var best int32
	for _, p := range probes {
		if int(p) >= n || p < 0 {
			continue
		}
		if ecc := graph.Eccentricity(g, p); ecc > best {
			best = ecc
		}
	}
	return int(best) == d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
