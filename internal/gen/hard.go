package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// HardInstance is an Elkin/Lotker-style lower-bound-shaped graph: ℓ
// vertex-disjoint long paths at the bottom of a stack of sparse random
// bipartite layers capped by a root (even D) or a pair of linked roots
// (odd D). The graph has diameter exactly D, yet the induced subgraph of
// each path has diameter |path|-1, so shortcutting the paths forces routes
// through the inter-layer edges — the structure the paper's dilation
// argument (shortcut trees) is designed for.
//
// This family is our synthetic substitute for Elkin's lower-bound graph G*
// (see DESIGN.md, substitutions): the exact lower-bound construction is an
// existence argument, while experiments need a parameterized generator whose
// partition into paths exhibits the same tension between congestion and
// dilation.
type HardInstance struct {
	G *graph.Graph
	// Paths lists the ℓ vertex-disjoint bottom paths; each is a connected
	// part for the shortcut partition.
	Paths [][]graph.NodeID
	// Diameter is the target (and verified-by-tests) diameter D.
	Diameter int
	// PathLen is the number of nodes on each bottom path.
	PathLen int
}

// KD returns the paper's exponent value kD = n^((D-2)/(2D-2)) for an n-vertex
// diameter-D graph. For D ≤ 2 it returns 1 (the exponent is ≤ 0).
func KD(n, d int) float64 {
	if d <= 2 {
		return 1
	}
	exp := float64(d-2) / float64(2*d-2)
	return math.Pow(float64(n), exp)
}

// NewHardInstance builds a hard instance on approximately n vertices with
// diameter d ≥ 3. Each bottom path has ⌈pathFactor·√(n/2)⌉ nodes
// (pathFactor ≤ 0 selects 1.0) — the √n-length paths of the lower-bound
// constructions, which make every path a "large" part (|Si| > kD) whose
// trivial dilation Θ(√n) genuinely requires shortcutting. attach is the
// number of upward attachments per node (attach ≤ 0 selects 2).
func NewHardInstance(n, d int, pathFactor float64, attach int, rng *rand.Rand) (*HardInstance, error) {
	if d < 3 {
		return nil, fmt.Errorf("hard instance: diameter %d < 3", d)
	}
	if pathFactor <= 0 {
		pathFactor = 1
	}
	if attach <= 0 {
		attach = 2
	}
	kd := KD(n, d)
	pathLen := int(math.Ceil(pathFactor * math.Sqrt(float64(n)/2)))
	if pathLen <= int(kd) {
		pathLen = int(kd) + 1 // keep paths "large" even at tiny n / large D
	}
	if pathLen < 2 {
		pathLen = 2
	}

	// Stack shape: even D uses one stack of height h = D/2 - 1 and one root;
	// odd D uses two stacks of height h = (D-3)/2 with adjacent roots.
	twoStacks := d%2 == 1
	var height int
	if twoStacks {
		height = (d - 3) / 2
	} else {
		height = d/2 - 1
	}
	numStacks := 1
	if twoStacks {
		numStacks = 2
	}

	// Vertex budget: when there are middle layers, half the nodes go to the
	// bottom paths and half to the stacks; with no middle layers (D ∈ {3,4})
	// everything except the roots is bottom.
	nBottom := n / 2
	if height == 0 {
		nBottom = n - numStacks
	}
	numPaths := nBottom / pathLen
	if numPaths < 1 {
		numPaths = 1
		pathLen = nBottom
		if pathLen < 2 {
			return nil, fmt.Errorf("hard instance: n=%d too small for D=%d", n, d)
		}
	}
	nBottom = numPaths * pathLen
	nUpper := n - nBottom
	numRoots := numStacks
	layerNodes := nUpper - numRoots
	totalLayers := height * numStacks
	layerSize := 0
	if totalLayers > 0 {
		layerSize = layerNodes / totalLayers
		if layerSize < attach+1 {
			return nil, fmt.Errorf("hard instance: n=%d too small for D=%d (layer size %d)", n, d, layerSize)
		}
	}

	totalNodes := nBottom + numRoots + layerSize*totalLayers
	b := graph.NewBuilder(totalNodes)

	// Bottom paths occupy [0, nBottom).
	paths := make([][]graph.NodeID, numPaths)
	for i := 0; i < numPaths; i++ {
		p := make([]graph.NodeID, pathLen)
		base := i * pathLen
		for j := 0; j < pathLen; j++ {
			p[j] = graph.NodeID(base + j)
			if j > 0 {
				mustAdd(b, p[j-1], p[j])
			}
		}
		paths[i] = p
	}

	// Layer node IDs: stack s, level ℓ ∈ [0, height) occupies a contiguous
	// block after the bottom nodes. Roots come last.
	layerStart := func(stack, level int) int {
		return nBottom + (stack*height+level)*layerSize
	}
	roots := make([]graph.NodeID, numRoots)
	for s := 0; s < numRoots; s++ {
		roots[s] = graph.NodeID(nBottom + layerSize*totalLayers + s)
	}
	if twoStacks {
		mustAdd(b, roots[0], roots[1])
	}

	pick := func(start int) graph.NodeID {
		return graph.NodeID(start + rng.Intn(layerSize))
	}

	// Upward wiring. Bottom node of path i goes to stack (i mod numStacks).
	for i, p := range paths {
		stack := i % numStacks
		for _, u := range p {
			if height == 0 {
				b.TryAddEdge(u, roots[stack])
				continue
			}
			for t := 0; t < attach; t++ {
				b.TryAddEdge(u, pick(layerStart(stack, 0)))
			}
		}
	}
	for s := 0; s < numStacks; s++ {
		for lvl := 0; lvl < height; lvl++ {
			start := layerStart(s, lvl)
			for off := 0; off < layerSize; off++ {
				u := graph.NodeID(start + off)
				if lvl+1 < height {
					for t := 0; t < attach; t++ {
						b.TryAddEdge(u, pick(layerStart(s, lvl+1)))
					}
				} else {
					b.TryAddEdge(u, roots[s])
				}
			}
		}
	}

	return &HardInstance{
		G:        b.Build(),
		Paths:    paths,
		Diameter: d,
		PathLen:  pathLen,
	}, nil
}
