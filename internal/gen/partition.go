package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// VoronoiParts partitions the nodes of a connected graph into k connected
// parts by growing balls from k random seeds simultaneously (multi-source
// BFS); every node joins the cell of its BFS parent, which keeps each cell
// connected. Parts are returned as node lists; empty cells never occur since
// each seed owns itself. If k exceeds n, k is clamped to n.
func VoronoiParts(g *graph.Graph, k int, rng *rand.Rand) ([][]graph.NodeID, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("voronoi parts: empty graph")
	}
	if k > n {
		k = n
	}
	if k < 1 {
		return nil, fmt.Errorf("voronoi parts: k=%d < 1", k)
	}
	seeds := rng.Perm(n)[:k]
	srcs := make([]graph.NodeID, k)
	cell := make([]int32, n)
	for i := range cell {
		cell[i] = -1
	}
	for i, s := range seeds {
		srcs[i] = graph.NodeID(s)
		cell[s] = int32(i)
	}
	res := graph.MultiSourceBFS(g, srcs)
	if len(res.Reached) != n {
		return nil, fmt.Errorf("voronoi parts: graph is not connected")
	}
	// Reached is in visit order, so parents are labeled before children.
	for _, v := range res.Reached {
		if cell[v] == -1 {
			cell[v] = cell[res.Parent[v]]
		}
	}
	parts := make([][]graph.NodeID, k)
	for v := 0; v < n; v++ {
		c := cell[v]
		parts[c] = append(parts[c], graph.NodeID(v))
	}
	return parts, nil
}

// PathSegments partitions the path graph 0-1-…-(n-1) into consecutive
// segments of the given length (the last segment may be shorter). It is a
// convenience for tests and examples that want maximally-stretched parts.
func PathSegments(n, segLen int) [][]graph.NodeID {
	if segLen < 1 {
		segLen = 1
	}
	var parts [][]graph.NodeID
	for base := 0; base < n; base += segLen {
		end := base + segLen
		if end > n {
			end = n
		}
		seg := make([]graph.NodeID, 0, end-base)
		for v := base; v < end; v++ {
			seg = append(seg, graph.NodeID(v))
		}
		parts = append(parts, seg)
	}
	return parts
}

// LargestParts returns the idx'th..end parts of the input sorted by
// decreasing size, keeping only parts with at least minSize nodes.
func LargestParts(parts [][]graph.NodeID, minSize int) [][]graph.NodeID {
	sorted := make([][]graph.NodeID, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) > len(sorted[j]) })
	var out [][]graph.NodeID
	for _, p := range sorted {
		if len(p) >= minSize {
			out = append(out, p)
		}
	}
	return out
}
