package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// InsertDelta draws an insert-only delta of k edges absent from g, with
// uniform [0, 1) weights — the standard mutation workload of the dynamic
// experiments and benchmarks (insertions cannot disconnect a part, so the
// delta is always repairable). Deterministic given the rng. Fails rather
// than spinning when g is too dense to yield k absent edges quickly.
func InsertDelta(g *graph.Graph, k int, rng *rand.Rand) (graph.Delta, error) {
	var d graph.Delta
	n := g.NumNodes()
	seen := make(map[[2]graph.NodeID]bool, k)
	for tries := 0; len(d.Insert) < k; tries++ {
		if tries > 100*k+1000 {
			return d, fmt.Errorf("gen: could not draw %d absent edges (n=%d, m=%d)", k, n, g.NumEdges())
		}
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]graph.NodeID{u, v}] {
			continue
		}
		seen[[2]graph.NodeID{u, v}] = true
		// 1-Float64() draws from (0, 1] — strictly positive, like
		// NewUniformWeights, so the delta always passes weight validation.
		d.Insert = append(d.Insert, graph.DeltaEdge{U: u, V: v, W: 1 - rng.Float64()})
	}
	return d, nil
}
