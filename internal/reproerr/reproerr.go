// Package reproerr is the repository's typed error taxonomy (API v2).
//
// Every validation failure, budget overrun, bandwidth violation, and
// cancellation across the shortcut framework and its application family is
// reported as an *Error carrying the operation that failed and a machine-
// readable Kind, so callers branch with errors.As/errors.Is instead of
// string matching. The package is a leaf: everything above it — congest,
// sched, shortcut, mst, sssp, mincut, twoecss, serve, and the repro facade
// (which re-exports Error and Kind) — wraps its failures here.
package reproerr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
)

// Kind classifies an Error for errors.As-based branching.
type Kind uint8

const (
	// KindUnknown is the zero Kind: a wrapped failure with no classification.
	KindUnknown Kind = iota
	// KindInvalidInput marks rejected arguments and options (the v1
	// validation strings: nil Rng, empty graph, out-of-range part, …).
	KindInvalidInput
	// KindBudgetExceeded marks a simulated execution that ran out of its
	// round budget (wraps congest.ErrMaxRounds / sched.ErrMaxRounds).
	KindBudgetExceeded
	// KindBandwidth marks a CONGEST bandwidth violation (two messages on
	// one port in one round; wraps congest.ErrBandwidth).
	KindBandwidth
	// KindCanceled marks a run aborted by context cancellation; the Error
	// wraps context.Canceled, so errors.Is(err, context.Canceled) holds.
	KindCanceled
	// KindDeadline marks a run aborted by a context deadline; the Error
	// wraps context.DeadlineExceeded.
	KindDeadline
	// KindCorrupt marks a persisted artifact (a snapshot file) that failed
	// structural or checksum validation: truncated container, bad magic or
	// section table, checksum mismatch, or cross-section inconsistency.
	KindCorrupt
)

// String returns the kind's stable lowercase name.
func (k Kind) String() string {
	switch k {
	case KindInvalidInput:
		return "invalid input"
	case KindBudgetExceeded:
		return "budget exceeded"
	case KindBandwidth:
		return "bandwidth violation"
	case KindCanceled:
		return "canceled"
	case KindDeadline:
		return "deadline exceeded"
	case KindCorrupt:
		return "corrupt artifact"
	}
	return "unknown"
}

// Error is one classified failure: Op names the operation that failed
// ("shortcut.Build", "mst.Distributed", …), Kind classifies it, and Err
// carries the underlying cause (never nil).
type Error struct {
	Op   string
	Kind Kind
	Err  error
}

// Error formats as "op: cause", matching the v1 message shape so existing
// substring checks keep working.
func (e *Error) Error() string {
	if e.Op == "" {
		return e.Err.Error()
	}
	return e.Op + ": " + e.Err.Error()
}

// Unwrap exposes the cause to errors.Is/errors.As chains.
func (e *Error) Unwrap() error { return e.Err }

// New wraps err as an *Error. A nil err is replaced by the kind's name so
// the result is always a usable error value.
func New(op string, kind Kind, err error) *Error {
	if err == nil {
		err = errors.New(kind.String())
	}
	return &Error{Op: op, Kind: kind, Err: err}
}

// Errorf is New over a formatted cause (supports %w).
func Errorf(op string, kind Kind, format string, args ...any) *Error {
	return &Error{Op: op, Kind: kind, Err: fmt.Errorf(format, args...)}
}

// Invalid is the KindInvalidInput shorthand used by every validation site.
func Invalid(op, format string, args ...any) *Error {
	return Errorf(op, KindInvalidInput, format, args...)
}

// errRngRequired is the uniform cause for every package's Rng validation —
// one message everywhere (v1 had seven near-identical variants).
var errRngRequired = errors.New("Rng is required (v2 callers: supply WithSeed or WithRng)")

// RequireRng returns the uniform KindInvalidInput error when rng is nil.
func RequireRng(op string, rng *rand.Rand) error {
	if rng == nil {
		return New(op, KindInvalidInput, errRngRequired)
	}
	return nil
}

// FromContext classifies a context error: context.Canceled → KindCanceled,
// context.DeadlineExceeded → KindDeadline, anything else KindUnknown. The
// cause is wrapped, so errors.Is(err, context.Canceled) (resp.
// DeadlineExceeded) holds on the result.
func FromContext(op string, err error) *Error {
	kind := KindUnknown
	switch {
	case errors.Is(err, context.Canceled):
		kind = KindCanceled
	case errors.Is(err, context.DeadlineExceeded):
		kind = KindDeadline
	}
	return New(op, kind, err)
}

// CtxCheck polls ctx once and returns the classified cancellation error if
// it is done, nil otherwise (nil ctx always passes). This is the shared
// check every cold-path cancellation point uses; the hot round loops
// prefetch Done() themselves and classify via FromContext.
func CtxCheck(op string, ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return FromContext(op, ctx.Err())
	default:
		return nil
	}
}

// KindOf extracts the Kind of the outermost *Error in err's chain, or
// KindUnknown when there is none.
func KindOf(err error) Kind {
	var e *Error
	if errors.As(err, &e) {
		return e.Kind
	}
	return KindUnknown
}

// httpStatus is the taxonomy's wire mapping, the single table every network
// front end shares. Values are plain integers (not net/http constants) so
// this leaf package stays import-light:
//
//	KindInvalidInput   → 400 Bad Request        (rejected arguments)
//	KindCorrupt        → 422 Unprocessable      (artifact failed validation)
//	KindBudgetExceeded → 429 Too Many Requests  (budget/admission shed)
//	KindCanceled       → 499 Client Closed      (nginx convention)
//	KindDeadline       → 504 Gateway Timeout    (deadline expired)
//	KindBandwidth      → 500 Internal           (simulation invariant broken)
//	KindUnknown        → 500 Internal
var httpStatus = map[Kind]int{
	KindInvalidInput:   400,
	KindCorrupt:        422,
	KindBudgetExceeded: 429,
	KindCanceled:       499,
	KindDeadline:       504,
	KindBandwidth:      500,
	KindUnknown:        500,
}

// HTTPStatus maps a Kind to its HTTP status code (see the table above).
// Kinds outside the taxonomy map to 500.
func HTTPStatus(k Kind) int {
	if s, ok := httpStatus[k]; ok {
		return s
	}
	return 500
}

// HTTPStatusOf is HTTPStatus over KindOf: the status code of err's
// outermost classified error, or 500 for unclassified errors. A nil err is
// 200.
func HTTPStatusOf(err error) int {
	if err == nil {
		return 200
	}
	return HTTPStatus(KindOf(err))
}
