package reproerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestHTTPStatus pins the full taxonomy→status table: every declared Kind
// has an explicit mapping, and the mapping is the one the gateway's error
// path (and its clients) rely on.
func TestHTTPStatus(t *testing.T) {
	want := map[Kind]int{
		KindUnknown:        500,
		KindInvalidInput:   400,
		KindBudgetExceeded: 429,
		KindBandwidth:      500,
		KindCanceled:       499,
		KindDeadline:       504,
		KindCorrupt:        422,
	}
	// Every Kind the package declares must appear in the table — adding a
	// Kind without deciding its wire mapping is a bug this test catches.
	for k := KindUnknown; k <= KindCorrupt; k++ {
		w, ok := want[k]
		if !ok {
			t.Fatalf("Kind %v (%d) missing from the test's expectation table", k, k)
		}
		if got := HTTPStatus(k); got != w {
			t.Errorf("HTTPStatus(%v) = %d, want %d", k, got, w)
		}
	}
	if got := HTTPStatus(Kind(250)); got != 500 {
		t.Errorf("HTTPStatus(out-of-taxonomy) = %d, want 500", got)
	}
}

// TestHTTPStatusOf pins the error-chain resolution: the outermost *Error's
// kind decides, wrapped causes don't, and unclassified/nil errors get
// 500/200.
func TestHTTPStatusOf(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 200},
		{"plain", errors.New("boom"), 500},
		{"invalid", Invalid("op", "bad arg"), 400},
		{"budget", New("op", KindBudgetExceeded, nil), 429},
		{"corrupt", New("op", KindCorrupt, nil), 422},
		{"canceled", FromContext("op", context.Canceled), 499},
		{"deadline", FromContext("op", context.DeadlineExceeded), 504},
		{"wrapped", fmt.Errorf("outer: %w", Invalid("op", "bad")), 400},
		{"outermost wins", New("op", KindBudgetExceeded, Invalid("op", "bad")), 429},
	}
	for _, c := range cases {
		if got := HTTPStatusOf(c.err); got != c.want {
			t.Errorf("%s: HTTPStatusOf = %d, want %d", c.name, got, c.want)
		}
	}
}
