package gateway

import (
	"sync"
	"testing"
	"time"

	"repro/internal/testx"
)

// waitPending polls the coalescer until exactly n waiters are parked in the
// open window (or fails). The poll reads under the coalescer's own mutex, so
// the observed state is coherent.
func waitPending(t *testing.T, c *coalescer, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.pending)
		c.mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pending never reached %d (at %d)", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescerStaleTimer pins the window-generation guard deterministically
// by playing the timer goroutine's role by hand. timer.Stop cannot stop an
// AfterFunc whose callback already started, so a window's expiry can run
// after a MaxBatch early flush already drained that window AND a newer
// window opened. Before the guard, that stale expiry drained the newer
// window prematurely (a batch of one — coalescing defeated) and stopped the
// newer window's live timer. The generation check must make it a no-op.
func TestCoalescerStaleTimer(t *testing.T) {
	t.Cleanup(testx.LeakCheck(t.Fatalf))
	fx := makeFixture(t, 200, 21)
	// A one-minute window never fires on its own: every expiry in this test
	// is a hand-delivered flushTimer call with a chosen generation.
	env := newEnv(t, fx, Options{BatchWindow: time.Minute, MaxBatch: 2})
	co := env.gw.co

	// Window 1: two queries hit MaxBatch and flush early. Its timer was
	// stopped, but pretend Stop lost the race and the expiry callback is
	// about to run anyway.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(src int64) {
			defer wg.Done()
			if status, raw := post(t, env.srv.URL+"/v1/query",
				QueryRequest{Kind: "sssp", Source: intp(src)}, nil); status != 200 {
				t.Errorf("window-1 query: status %d: %s", status, raw)
			}
		}(int64(i))
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Window 2 opens with one parked waiter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if status, raw := post(t, env.srv.URL+"/v1/query",
			QueryRequest{Kind: "sssp", Source: intp(5)}, nil); status != 200 {
			t.Errorf("window-2 query: status %d: %s", status, raw)
		}
	}()
	waitPending(t, co, 1)

	// The stale window-1 expiry finally runs. It must neither drain window
	// 2's waiter nor disturb its live timer.
	co.flushTimer(1)
	co.mu.Lock()
	pending, timer, gen := len(co.pending), co.timer, co.gen
	co.mu.Unlock()
	if pending != 1 || timer == nil {
		t.Fatalf("stale expiry touched the newer window: pending=%d timer=%v", pending, timer)
	}
	if gen != 2 {
		t.Fatalf("generation = %d, want 2 (one per opened window)", gen)
	}
	if flushes := env.reg.Counter("lcs_gateway_coalesce_out_total").Value(); flushes != 2 {
		t.Fatalf("coalesce_out after stale expiry = %d, want window 1's 2 roots only", flushes)
	}

	// The genuine window-2 expiry flushes the waiter.
	co.flushTimer(2)
	wg.Wait()

	// A second delivery of the same expiry (duplicate timer fire after the
	// flush emptied the window) is also a no-op rather than a double flush.
	co.flushTimer(2)
	if in := env.reg.Counter("lcs_gateway_coalesce_in_total").Value(); in != 3 {
		t.Fatalf("coalesce_in = %d, want 3", in)
	}
	if out := env.reg.Counter("lcs_gateway_coalesce_out_total").Value(); out != 3 {
		t.Fatalf("coalesce_out = %d, want 3 (2 + 1, no phantom flushes)", out)
	}
}

// TestCoalescerExpiryRace hammers the expiry path against MaxBatch early
// flushes: a window short enough to fire constantly while bursts of exactly
// MaxBatch queries keep draining windows from under it. Every request must
// complete with an answer and the in/out accounting must balance — no lost
// waiter, no double flush. Runs under -race in CI, where the pre-guard
// stale-flush manifested as a torn window hand-off.
func TestCoalescerExpiryRace(t *testing.T) {
	t.Cleanup(testx.LeakCheck(t.Fatalf))
	fx := makeFixture(t, 200, 22)
	env := newEnv(t, fx, Options{
		QueueDepth:  256,
		BatchWindow: 200 * time.Microsecond,
		MaxBatch:    3,
	})
	n := int64(fx.g.NumNodes())

	const workers, each = 6, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				src := int64(w*17+i) % n
				status, raw := post(t, env.srv.URL+"/v1/query",
					QueryRequest{Kind: "sssp", Source: intp(src)}, nil)
				if status != 200 {
					t.Errorf("worker %d query %d: status %d: %s", w, i, status, raw)
					return
				}
				got := decodeResp[QueryResponse](t, raw)
				if got.SSSP == nil || got.SSSP.Source != src {
					t.Errorf("worker %d query %d: malformed answer: %s", w, i, raw)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Close flushes any open window; afterwards the books must balance:
	// every enqueued waiter went out in exactly one batch execution.
	env.gw.Close()
	in := env.reg.Counter("lcs_gateway_coalesce_in_total").Value()
	out := env.reg.Counter("lcs_gateway_coalesce_out_total").Value()
	if in != workers*each {
		t.Fatalf("coalesce_in = %d, want %d", in, workers*each)
	}
	if out < 1 || out > in {
		t.Fatalf("coalesce_out = %d out of balance with in = %d", out, in)
	}
}
