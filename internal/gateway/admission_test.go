package gateway

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/testx"
)

// TestAdmissionShed pins the bounded-queue contract: with QueueDepth slots
// occupied the next request is shed immediately with 429 — it neither
// queues nor hangs — and the parked requests still complete when their
// window flushes.
//
// The setup is deterministic, not timing-dependent: a very long coalescing
// window parks sssp requests while they hold their admission slots, so
// "the gateway is full" is a state the test enters exactly, not a race it
// hopes to win.
func TestAdmissionShed(t *testing.T) {
	t.Cleanup(testx.LeakCheck(t.Fatalf))
	fx := makeFixture(t, 200, 11)
	const depth = 2
	env := newEnv(t, fx, Options{
		QueueDepth:  depth,
		BatchWindow: time.Minute, // parked until Close flushes
	})

	type result struct {
		status int
		raw    []byte
	}
	results := make(chan result, depth)
	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func(src int64) {
			defer wg.Done()
			status, raw := post(t, env.srv.URL+"/v1/query",
				QueryRequest{Kind: "sssp", Source: intp(src)}, nil)
			results <- result{status, raw}
		}(int64(i))
	}

	// Wait until both requests hold their slots (parked in the window).
	depthGauge := env.reg.Gauge("lcs_gateway_queue_depth")
	deadline := time.Now().Add(5 * time.Second)
	for depthGauge.Value() != depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", depth, depthGauge.Value())
		}
		time.Sleep(time.Millisecond)
	}

	// The pool is full: every further request — sssp or not — sheds with
	// 429 immediately. Run several to pin that shedding doesn't consume
	// slots or block.
	for i := 0; i < 3; i++ {
		done := make(chan struct{})
		var status int
		var raw []byte
		go func() {
			defer close(done)
			status, raw = post(t, env.srv.URL+"/v1/query", QueryRequest{Kind: "mst"}, nil)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("shed request hung instead of failing fast")
		}
		if status != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429: %s", status, raw)
		}
	}
	if sheds := env.reg.Counter("lcs_gateway_shed_total").Value(); sheds != 3 {
		t.Fatalf("shed counter %d, want 3", sheds)
	}

	// Close flushes the open window: the parked requests are served, not
	// dropped.
	env.gw.Close()
	wg.Wait()
	close(results)
	for res := range results {
		if res.status != 200 {
			t.Fatalf("parked request finished %d: %s", res.status, res.raw)
		}
	}
	if peak := env.reg.Gauge("lcs_gateway_queue_depth_peak").Value(); peak != depth {
		t.Fatalf("peak depth %d, want %d", peak, depth)
	}
}

// TestCoalescing pins the batch-window fold: concurrent sssp requests with
// duplicate roots produce answers identical to direct serving, and the
// coalescing counters show fewer executed roots than admitted queries —
// observable both on the live registry and through the /metrics scrape.
func TestCoalescing(t *testing.T) {
	fx := makeFixture(t, 250, 12)
	env := newEnv(t, fx, Options{BatchWindow: 300 * time.Millisecond})

	roots := []int64{0, 1, 0, 1, 0, 2, 3, 0} // 8 queries, 4 distinct roots
	type result struct {
		root   int64
		status int
		raw    []byte
	}
	results := make(chan result, len(roots))
	var wg sync.WaitGroup
	for _, src := range roots {
		wg.Add(1)
		go func(src int64) {
			defer wg.Done()
			status, raw := post(t, env.srv.URL+"/v1/query",
				QueryRequest{Kind: "sssp", Source: intp(src)}, nil)
			results <- result{src, status, raw}
		}(src)
	}
	wg.Wait()
	close(results)

	for res := range results {
		if res.status != 200 {
			t.Fatalf("root %d: status %d: %s", res.root, res.status, res.raw)
		}
		got := decodeResp[QueryResponse](t, res.raw)
		want, err := env.direct.ServeSSSP(graph.NodeID(res.root))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Dist {
			if math.Float64bits(got.SSSP.Dist[i]) != math.Float64bits(want.Dist[i]) {
				t.Fatalf("root %d: dist[%d] = %v, want %v", res.root, i, got.SSSP.Dist[i], want.Dist[i])
			}
		}
	}

	in := env.reg.Counter("lcs_gateway_coalesce_in_total").Value()
	out := env.reg.Counter("lcs_gateway_coalesce_out_total").Value()
	if in != int64(len(roots)) {
		t.Fatalf("coalesce_in %d, want %d", in, len(roots))
	}
	// 4 distinct roots across however many windows the scheduler produced:
	// out is at least the distinct count and, because at least one window
	// held a duplicate (8 queries over at most 2 windows of 4 roots), must
	// fold below the query count.
	if out < 4 || out >= in {
		t.Fatalf("coalesce_out %d with in %d: no fold happened", out, in)
	}

	// The same counters must be visible on the admin scrape (acceptance:
	// coalescing observable over the wire).
	resp, err := http.Get(env.admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		fmt.Sprintf("lcs_gateway_coalesce_in_total %d", in),
		fmt.Sprintf("lcs_gateway_coalesce_out_total %d", out),
		"lcs_gateway_window_batch",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, body)
		}
	}
}
