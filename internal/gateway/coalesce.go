package gateway

import (
	"context"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/serve"
)

// coalesceResult is what one waiting request receives when its window
// flushes: the typed answer (sharing the batch execution's distance rows)
// or the whole batch's error.
type coalesceResult struct {
	ans *serve.SSSPAnswer
	err error
}

// ssspWaiter is one parked /v1/query sssp request: the root it asked for
// and the 1-buffered channel its result is delivered on (buffered so the
// flusher never blocks on a waiter whose deadline already expired).
type ssspWaiter struct {
	src graph.NodeID
	ch  chan coalesceResult
}

// coalescer folds concurrent sssp requests into shared batch executions: a
// request opens a window of length `window`; every sssp request arriving
// inside it joins the same ServeBatchCtx call, whose in-batch duplicate-
// root coalescing answers identical roots with one traversal. The window
// flushes early at maxBatch waiters (the bit-parallel kernel's word width —
// a fuller batch would split into a second execution anyway).
//
// Waiters hold their admission slots while parked, so a coalescing gateway
// sheds at exactly the same depth as a non-coalescing one.
type coalescer struct {
	srv      *serve.Server
	base     context.Context // batch executions outlive any one waiter's deadline
	window   time.Duration
	maxBatch int
	m        *gwMetrics

	mu      sync.Mutex
	pending []ssspWaiter
	timer   *time.Timer
	gen     uint64 // id of the currently open window; bumped on every open
	closed  bool
	wg      sync.WaitGroup // in-flight flush executions; Add only under mu
}

func newCoalescer(srv *serve.Server, base context.Context, window time.Duration, maxBatch int, m *gwMetrics) *coalescer {
	return &coalescer{srv: srv, base: base, window: window, maxBatch: maxBatch, m: m}
}

// enqueue parks one sssp request in the current window and returns its
// result channel. ok=false means the coalescer is closed — the caller
// serves directly instead.
func (c *coalescer) enqueue(src graph.NodeID) (<-chan coalesceResult, bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false
	}
	w := ssspWaiter{src: src, ch: make(chan coalesceResult, 1)}
	c.pending = append(c.pending, w)
	if len(c.pending) >= c.maxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		go c.run(batch)
		return w.ch, true
	}
	if len(c.pending) == 1 {
		// First waiter opens the window. The timer captures the window's
		// generation so an expiry that loses the race against an early
		// flush (or Close) cannot drain a window it did not open — see
		// flushTimer.
		c.gen++
		gen := c.gen
		c.timer = time.AfterFunc(c.window, func() { c.flushTimer(gen) })
	}
	c.mu.Unlock()
	return w.ch, true
}

// takeLocked detaches the pending window (mu held) and accounts the
// in-flight execution. The wg.Add happens under mu so Close's wg.Wait can
// never race a late Add.
func (c *coalescer) takeLocked() []ssspWaiter {
	batch := c.pending
	c.pending = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if len(batch) > 0 {
		c.wg.Add(1)
	}
	return batch
}

// flushTimer is the window-expiry path, running on the timer's goroutine.
// gen is the generation of the window that armed this timer. timer.Stop in
// takeLocked cannot stop a timer whose function already started, so an
// expiry can race an early MaxBatch flush (or Close) that drained the same
// window: by the time the expiry acquires mu, its window is gone and —
// worse — a NEW window may have opened. Flushing unconditionally here would
// drain that newer window prematurely (batch of one, coalescing defeated)
// and stop its timer. The generation check makes the stale expiry a no-op.
func (c *coalescer) flushTimer(gen uint64) {
	c.mu.Lock()
	if gen != c.gen || len(c.pending) == 0 {
		// Stale: the window this timer was armed for was already flushed
		// (early flush, Close), and any pending waiters belong to a newer
		// window with a live timer of its own.
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.run(batch)
}

// run executes one detached window as a single batched serve call and fans
// the aligned answers back out to the waiters.
func (c *coalescer) run(batch []ssspWaiter) {
	if len(batch) == 0 {
		return
	}
	defer c.wg.Done()

	queries := make([]serve.Query, len(batch))
	distinct := make(map[graph.NodeID]struct{}, len(batch))
	for i, w := range batch {
		queries[i] = serve.SSSPQuery{Source: w.src}
		distinct[w.src] = struct{}{}
	}
	c.m.flush(len(batch), len(distinct))

	answers, err := c.srv.ServeBatchCtx(c.base, queries)
	if err != nil {
		for _, w := range batch {
			w.ch <- coalesceResult{err: err}
		}
		return
	}
	for i, w := range batch {
		ans, _ := answers[i].(*serve.SSSPAnswer)
		w.ch <- coalesceResult{ans: ans}
	}
}

// close flushes the open window synchronously and waits for every in-flight
// execution, so no flusher goroutine outlives the gateway (the leak-checked
// shutdown contract). Requests arriving after close fall back to direct
// serving.
func (c *coalescer) close() {
	c.mu.Lock()
	c.closed = true
	batch := c.takeLocked()
	c.mu.Unlock()
	if len(batch) > 0 {
		c.run(batch)
	}
	c.wg.Wait()
}
