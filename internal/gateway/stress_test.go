package gateway

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/testx"
)

// TestStressQueriesWithDeltas hammers the gateway with concurrent queries
// of every kind while /v1/delta repeatedly mutates and swaps the active
// snapshot — the live-traffic contract: every query lands on a coherent
// epoch (200 with a well-formed answer), no request is lost, and shutdown
// leaks nothing. Run under -race in CI.
func TestStressQueriesWithDeltas(t *testing.T) {
	t.Cleanup(testx.LeakCheck(t.Fatalf))
	fx := makeFixture(t, 200, 13)
	env := newEnv(t, fx, Options{
		QueueDepth:  128,
		BatchWindow: 2 * time.Millisecond,
	})
	n := fx.g.NumNodes()

	// A fresh edge to churn: every delta inserts it, the next deletes it.
	var du, dv graph.NodeID = -1, -1
findPair:
	for a := graph.NodeID(0); int(a) < n; a++ {
		for b := a + 1; int(b) < n; b++ {
			if !fx.g.HasEdge(a, b) {
				du, dv = a, b
				break findPair
			}
		}
	}
	if du < 0 {
		t.Fatal("no insertable edge")
	}

	const (
		queryWorkers = 4
		queriesEach  = 30
		deltas       = 6
	)
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				var req QueryRequest
				switch i % 3 {
				case 0:
					req = QueryRequest{Kind: "sssp", Source: intp(int64((w*31 + i) % n))}
				case 1:
					req = QueryRequest{Kind: "mst"}
				case 2:
					req = QueryRequest{Kind: "quality", Part: partp(i % 8)}
				}
				status, raw := post(t, env.srv.URL+"/v1/query", req, nil)
				if status != 200 {
					t.Errorf("worker %d query %d: status %d: %s", w, i, status, raw)
					return
				}
				got := decodeResp[QueryResponse](t, raw)
				if got.SSSP != nil && len(got.SSSP.Dist) != n {
					t.Errorf("worker %d query %d: dist length %d, want %d", w, i, len(got.SSSP.Dist), n)
					return
				}
				served.Add(1)
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < deltas; i++ {
			var req DeltaRequest
			if i%2 == 0 {
				req = DeltaRequest{Insert: []WireEdge{{U: int64(du), V: int64(dv), W: 0.25}}}
			} else {
				req = DeltaRequest{Delete: [][2]int64{{int64(du), int64(dv)}}}
			}
			status, raw := post(t, env.srv.URL+"/v1/delta", req, nil)
			if status != 200 {
				t.Errorf("delta %d: status %d: %s", i, status, raw)
				return
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if got := served.Load(); got != queryWorkers*queriesEach {
		t.Fatalf("served %d queries, want %d", got, queryWorkers*queriesEach)
	}
	// All deltas landed: generation advanced once per delta.
	wantGen := fx.snap.Generation() + deltas
	if gen := env.store.Snapshot().Generation(); gen != wantGen {
		t.Fatalf("final generation %d, want %d", gen, wantGen)
	}
	// Post-churn sanity: a final query serves finite distances from the
	// settled snapshot.
	status, raw := post(t, env.srv.URL+"/v1/query", QueryRequest{Kind: "sssp", Source: intp(0)}, nil)
	if status != 200 {
		t.Fatalf("final query: %d %s", status, raw)
	}
	got := decodeResp[QueryResponse](t, raw)
	for i, d := range got.SSSP.Dist {
		if math.IsNaN(d) {
			t.Fatalf("final dist[%d] is NaN", i)
		}
	}
}
