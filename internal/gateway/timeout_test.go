package gateway

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/reproerr"
)

// TestParseRequestTimeout pins the header parser's full table: Go durations
// and bare seconds parse, everything malformed — zero, negative,
// non-numeric, NaN, ±Inf — is a typed KindInvalidInput, and absurdly large
// second counts clamp instead of overflowing the float→int conversion into
// platform-defined garbage.
func TestParseRequestTimeout(t *testing.T) {
	valid := []struct {
		in   string
		want time.Duration
	}{
		{"250ms", 250 * time.Millisecond},
		{"1h30m", 90 * time.Minute},
		{"1ns", time.Nanosecond}, // expired-by-arrival, but well-formed: a 504, not a 400
		{"2", 2 * time.Second},
		{"1.5", 1500 * time.Millisecond},
		{"0.001", time.Millisecond},
		{"1e18", math.MaxInt64},  // > 292y of seconds: clamp, don't overflow
		{"1e300", math.MaxInt64}, // far beyond float64→int64 range
	}
	for _, c := range valid {
		d, err := parseRequestTimeout(c.in)
		if err != nil {
			t.Errorf("parseRequestTimeout(%q): unexpected error %v", c.in, err)
			continue
		}
		if d != c.want {
			t.Errorf("parseRequestTimeout(%q) = %v, want %v", c.in, d, c.want)
		}
	}

	invalid := []string{
		"0", "0s", "0.0",
		"-1", "-5s", "-0.5",
		"soon", "", "5 seconds", "10x",
		"NaN", "nan",
		"Inf", "+Inf", "-Inf", "1e9999", // ±Inf directly or via ParseFloat overflow
	}
	for _, in := range invalid {
		d, err := parseRequestTimeout(in)
		if err == nil {
			t.Errorf("parseRequestTimeout(%q) = %v, want KindInvalidInput error", in, d)
			continue
		}
		if k := reproerr.KindOf(err); k != reproerr.KindInvalidInput {
			t.Errorf("parseRequestTimeout(%q): kind %v, want KindInvalidInput", in, k)
		}
	}
}

// TestRequestTimeoutHeaderWire pins the same contract over HTTP on every
// deadline-honoring endpoint: a malformed Request-Timeout is a 400 with the
// machine-readable "invalid input" kind — never silently ignored (the
// request must NOT execute) and never an already-expired context
// misreported as a 504 deadline.
func TestRequestTimeoutHeaderWire(t *testing.T) {
	fx := makeFixture(t, 200, 23)
	env := newEnv(t, fx, Options{})

	for _, h := range []string{"0", "-1", "-5s", "soon", "NaN", "+Inf"} {
		t.Run(h, func(t *testing.T) {
			before := env.reg.Counter("lcs_gateway_errors_total", "endpoint", "query").Value()
			status, raw := post(t, env.srv.URL+"/v1/query",
				QueryRequest{Kind: "mst"}, map[string]string{"Request-Timeout": h})
			if status != 400 {
				t.Fatalf("Request-Timeout %q: status %d, want 400: %s", h, status, raw)
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("error body is not ErrorResponse JSON: %s", raw)
			}
			if e.Kind != reproerr.KindInvalidInput.String() {
				t.Fatalf("Request-Timeout %q: kind %q, want %q", h, e.Kind, reproerr.KindInvalidInput)
			}
			if after := env.reg.Counter("lcs_gateway_errors_total", "endpoint", "query").Value(); after != before+1 {
				t.Fatalf("Request-Timeout %q: errors_total %d → %d, want one typed error", h, before, after)
			}
		})
	}

	// The batch endpoint shares requestCtx; one spot check pins the wiring.
	status, raw := post(t, env.srv.URL+"/v1/batch",
		BatchRequest{Queries: []QueryRequest{{Kind: "mst"}}},
		map[string]string{"Request-Timeout": "-1"})
	if status != 400 {
		t.Fatalf("batch with negative timeout: status %d, want 400: %s", status, raw)
	}

	// A well-formed header still works: generous timeout, normal 200.
	status, raw = post(t, env.srv.URL+"/v1/query",
		QueryRequest{Kind: "mst"}, map[string]string{"Request-Timeout": "30s"})
	if status != 200 {
		t.Fatalf("valid timeout header: status %d: %s", status, raw)
	}
}
