package gateway

import (
	"encoding/json"
	"io"
	"math"
	"strconv"

	"repro/internal/graph"
	"repro/internal/reproerr"
	"repro/internal/serve"
)

// maxBodyBytes bounds every request body the gateway decodes. Delta
// payloads are the largest legitimate bodies (thousands of edge mutations);
// 16 MiB leaves generous headroom while keeping a hostile body from
// ballooning the decoder.
const maxBodyBytes = 16 << 20

// minMinCutEps floors the mincut approximation knob on the wire: the
// packed tree count is DefaultTrees(n)/eps, so accepting arbitrarily small
// positive eps would let one request buy unbounded work.
const minMinCutEps = 0.01

// QueryRequest is the JSON body of POST /v1/query and each element of a
// batch request. Kind selects the query family; the other fields are
// kind-specific payload. Source and Part are pointers so "absent" is
// distinguishable from the valid zero value — a sssp request without a
// source is a typed 400, not a silent query for node 0.
type QueryRequest struct {
	Kind   string  `json:"kind"`
	Source *int64  `json:"source,omitempty"` // sssp: root node
	Eps    float64 `json:"eps,omitempty"`    // mincut: approximation knob
	Part   *int    `json:"part,omitempty"`   // quality: part index
}

// toQuery validates the request and maps it onto the typed serve query
// family. Every rejection is a reproerr.KindInvalidInput — the
// typed-error-or-serves contract FuzzGatewayRequest pins.
func (q *QueryRequest) toQuery() (serve.Query, error) {
	const op = "gateway.query"
	switch q.Kind {
	case "sssp":
		if q.Source == nil {
			return nil, reproerr.Invalid(op, "sssp query requires a source")
		}
		if *q.Source < 0 || *q.Source > math.MaxInt32 {
			return nil, reproerr.Invalid(op, "source %d out of node-id range", *q.Source)
		}
		return serve.SSSPQuery{Source: graph.NodeID(*q.Source)}, nil
	case "mst":
		return serve.MSTQuery{}, nil
	case "mincut":
		if q.Eps < 0 || math.IsNaN(q.Eps) || math.IsInf(q.Eps, 0) {
			return nil, reproerr.Invalid(op, "eps %v must be a finite value >= 0", q.Eps)
		}
		// The packed tree count grows as 1/eps, so an arbitrarily small eps
		// is an arbitrarily expensive request — the wire surface floors it.
		if q.Eps > 0 && q.Eps < minMinCutEps {
			return nil, reproerr.Invalid(op, "eps %v below the serving floor %v (tree count grows as 1/eps; use 0 for the default packing)", q.Eps, minMinCutEps)
		}
		return serve.MinCutQuery{Eps: q.Eps}, nil
	case "twoecss":
		return serve.TwoECSSQuery{}, nil
	case "quality":
		if q.Part == nil {
			return nil, reproerr.Invalid(op, "quality query requires a part")
		}
		return serve.QualityQuery{Part: *q.Part}, nil
	case "":
		return nil, reproerr.Invalid(op, "missing query kind")
	default:
		return nil, reproerr.Invalid(op, "unknown query kind %q", q.Kind)
	}
}

// DistVector is a distance row on the wire. JSON cannot represent +Inf, so
// unreachable nodes (sssp.Infinite) marshal as null and unmarshal back to
// +Inf; finite values use Go's shortest round-trip formatting, so a decoded
// vector is bit-identical to the served one.
type DistVector []float64

// MarshalJSON renders the vector as a JSON array with null for +Inf.
func (d DistVector) MarshalJSON() ([]byte, error) {
	if d == nil {
		return []byte("null"), nil
	}
	buf := make([]byte, 0, 8*len(d)+2)
	buf = append(buf, '[')
	for i, v := range d {
		if i > 0 {
			buf = append(buf, ',')
		}
		if math.IsInf(v, 1) {
			buf = append(buf, "null"...)
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, -1) {
			return nil, reproerr.Invalid("gateway.dist", "unencodable distance %v at index %d", v, i)
		}
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	return append(buf, ']'), nil
}

// UnmarshalJSON parses the array form, mapping null back to +Inf.
func (d *DistVector) UnmarshalJSON(b []byte) error {
	var raw []*float64
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	out := make(DistVector, len(raw))
	for i, p := range raw {
		if p == nil {
			out[i] = math.Inf(1)
		} else {
			out[i] = *p
		}
	}
	*d = out
	return nil
}

// SSSPResult is the wire form of a serve.SSSPAnswer.
type SSSPResult struct {
	Source int64      `json:"source"`
	Dist   DistVector `json:"dist"`
}

// MSTResult is the wire form of a serve.MSTAnswer.
type MSTResult struct {
	Edges  []graph.EdgeID `json:"edges"`
	Weight float64        `json:"weight"`
}

// MinCutResult is the wire form of a serve.MinCutAnswer.
type MinCutResult struct {
	Value float64        `json:"value"`
	Side  []graph.NodeID `json:"side"`
	Trees int            `json:"trees"`
}

// TwoECSSResult is the wire form of a serve.TwoECSSAnswer.
type TwoECSSResult struct {
	Edges      []graph.EdgeID `json:"edges"`
	Weight     float64        `json:"weight"`
	LowerBound float64        `json:"lower_bound"`
	Ratio      float64        `json:"ratio"`
}

// QualityResult is the wire form of a serve.QualityAnswer.
type QualityResult struct {
	Part       int   `json:"part"`
	Congestion int   `json:"congestion"`
	DilationLo int32 `json:"dilation_lo"`
	DilationHi int32 `json:"dilation_hi"`
	Exact      bool  `json:"exact"`
}

// QueryResponse is the JSON body of a successful /v1/query answer (and each
// element of a batch response): exactly one kind-matching result field is
// set. Rounds/Messages carry the answer's marginal simulated cost where the
// library reports one (sssp).
type QueryResponse struct {
	Kind     string         `json:"kind"`
	SSSP     *SSSPResult    `json:"sssp,omitempty"`
	MST      *MSTResult     `json:"mst,omitempty"`
	MinCut   *MinCutResult  `json:"mincut,omitempty"`
	TwoECSS  *TwoECSSResult `json:"twoecss,omitempty"`
	Quality  *QualityResult `json:"quality,omitempty"`
	Rounds   int            `json:"rounds,omitempty"`
	Messages int64          `json:"messages,omitempty"`
}

// answerToResponse maps a typed serve answer onto its wire form.
func answerToResponse(a serve.Answer) *QueryResponse {
	switch a := a.(type) {
	case *serve.SSSPAnswer:
		return &QueryResponse{
			Kind:     "sssp",
			SSSP:     &SSSPResult{Source: int64(a.Source), Dist: DistVector(a.Dist)},
			Rounds:   a.Rounds,
			Messages: a.Messages,
		}
	case *serve.MSTAnswer:
		return &QueryResponse{Kind: "mst", MST: &MSTResult{Edges: a.Tree, Weight: a.Weight}}
	case *serve.MinCutAnswer:
		return &QueryResponse{Kind: "mincut", MinCut: &MinCutResult{Value: a.Value, Side: a.Side, Trees: a.Trees}}
	case *serve.TwoECSSAnswer:
		return &QueryResponse{Kind: "twoecss", TwoECSS: &TwoECSSResult{
			Edges: a.Edges, Weight: a.Weight, LowerBound: a.LowerBound, Ratio: a.Ratio,
		}}
	case *serve.QualityAnswer:
		return &QueryResponse{Kind: "quality", Quality: &QualityResult{
			Part:       a.Part,
			Congestion: a.Quality.Congestion,
			DilationLo: a.Quality.DilationLo,
			DilationHi: a.Quality.DilationHi,
			Exact:      a.Quality.Exact,
		}}
	}
	return nil
}

// BatchRequest is the JSON body of POST /v1/batch.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchResponse is the aligned answer list of a batch.
type BatchResponse struct {
	Answers []*QueryResponse `json:"answers"`
}

// WireEdge is one edge insertion of a delta request.
type WireEdge struct {
	U int64   `json:"u"`
	V int64   `json:"v"`
	W float64 `json:"w"`
}

// DeltaRequest is the JSON body of POST /v1/delta: edge deletions (by
// endpoints) applied before insertions (with weights) — graph.Delta on the
// wire.
type DeltaRequest struct {
	Delete [][2]int64 `json:"delete,omitempty"`
	Insert []WireEdge `json:"insert,omitempty"`
}

// toDelta validates endpoint ranges and maps onto graph.Delta. Weight and
// endpoint semantics are fully validated downstream by graph.ApplyDelta;
// here we only reject values that cannot narrow to a NodeID.
func (d *DeltaRequest) toDelta() (graph.Delta, error) {
	const op = "gateway.delta"
	out := graph.Delta{}
	for i, uv := range d.Delete {
		if !validNode(uv[0]) || !validNode(uv[1]) {
			return out, reproerr.Invalid(op, "delete[%d]: endpoints (%d,%d) out of node-id range", i, uv[0], uv[1])
		}
		out.Delete = append(out.Delete, [2]graph.NodeID{graph.NodeID(uv[0]), graph.NodeID(uv[1])})
	}
	for i, e := range d.Insert {
		if !validNode(e.U) || !validNode(e.V) {
			return out, reproerr.Invalid(op, "insert[%d]: endpoints (%d,%d) out of node-id range", i, e.U, e.V)
		}
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return out, reproerr.Invalid(op, "insert[%d]: weight %v is not finite", i, e.W)
		}
		out.Insert = append(out.Insert, graph.DeltaEdge{U: graph.NodeID(e.U), V: graph.NodeID(e.V), W: e.W})
	}
	if out.Size() == 0 {
		return out, reproerr.Invalid(op, "empty delta")
	}
	return out, nil
}

func validNode(v int64) bool { return v >= 0 && v <= math.MaxInt32 }

// DeltaResponse reports one applied delta: the new epoch/generation plus
// the repair's shape (see serve.RepairInfo).
type DeltaResponse struct {
	Epoch      uint64  `json:"epoch"`
	Generation uint64  `json:"generation"`
	Touched    int     `json:"touched_parts"`
	Inserted   int     `json:"inserted"`
	Deleted    int     `json:"deleted"`
	Rechecked  int     `json:"rechecked_parts"`
	RepairMs   float64 `json:"repair_ms"`
}

// SwapRequest is the JSON body of POST /v1/snapshot/swap: ship a persisted
// snapshot file into the live epoch protocol. Verify and Mmap default to
// true when absent.
type SwapRequest struct {
	Path   string `json:"path"`
	Verify *bool  `json:"verify,omitempty"`
	Mmap   *bool  `json:"mmap,omitempty"`
}

// SwapResponse reports one completed snapshot swap. Drained is false when
// the request deadline expired while the retired epoch still had pinned
// readers — the swap itself is unconditional and had already happened.
type SwapResponse struct {
	Epoch      uint64 `json:"epoch"`
	Generation uint64 `json:"generation"`
	Drained    bool   `json:"drained"`
}

// ErrorResponse is the JSON body of every non-2xx answer: the message plus
// the machine-readable taxonomy kind the status code was derived from.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// decodeJSON strictly decodes one JSON body: unknown fields and trailing
// data are rejected, and every failure is a typed KindInvalidInput.
func decodeJSON(r io.Reader, into any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return reproerr.Errorf("gateway.decode", reproerr.KindInvalidInput, "invalid request body: %w", err)
	}
	if dec.More() {
		return reproerr.Invalid("gateway.decode", "trailing data after request body")
	}
	return nil
}
