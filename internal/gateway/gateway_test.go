package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/reproerr"
	"repro/internal/serve"
	"repro/internal/testx"
	"repro/internal/twoecss"
)

// fixture is the serve-test fixture shape: a dense-enough connected,
// 2-edge-connected graph with a Voronoi partition, so every query kind has
// an answer.
type fixture struct {
	g     *graph.Graph
	w     graph.Weights
	parts [][]graph.NodeID
	snap  *serve.Snapshot
}

func makeFixture(t testing.TB, n int, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	for {
		g = gen.ErdosRenyi(n, math.Max(0.01, 8/float64(n)), rng)
		if graph.IsConnected(g) && len(twoecss.Bridges(g, allEdges(g))) == 0 {
			break
		}
	}
	w := graph.NewUniformWeights(g.NumEdges(), rng)
	parts, err := gen.VoronoiParts(g, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.NewSnapshot(g, w, parts, serve.SnapshotOptions{Rng: rng, LogFactor: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, w: w, parts: parts, snap: snap}
}

func allEdges(g *graph.Graph) []graph.EdgeID {
	edges := make([]graph.EdgeID, g.NumEdges())
	for e := range edges {
		edges[e] = graph.EdgeID(e)
	}
	return edges
}

// gwEnv is one end-to-end serving stack: a store-backed gateway behind
// httptest listeners, plus a direct server on the same snapshot and seed —
// the oracle wire answers must match bit-for-bit.
type gwEnv struct {
	fx     *fixture
	store  *serve.Store
	gw     *Gateway
	direct *serve.Server
	srv    *httptest.Server
	admin  *httptest.Server
	reg    *obs.Registry
}

func newEnv(t testing.TB, fx *fixture, gwOpts Options) *gwEnv {
	t.Helper()
	reg := obs.New()
	if gwOpts.Metrics == nil {
		gwOpts.Metrics = reg
	} else {
		reg = gwOpts.Metrics
	}
	sOpts := serve.ServerOptions{Executors: 4, Seed: 7, Metrics: reg}
	store := serve.NewStore(fx.snap)
	gw, err := New(serve.NewStoreServer(store, sOpts), gwOpts)
	if err != nil {
		t.Fatal(err)
	}
	env := &gwEnv{
		fx:     fx,
		store:  store,
		gw:     gw,
		direct: serve.NewServer(fx.snap, serve.ServerOptions{Executors: 4, Seed: 7}),
		srv:    httptest.NewServer(gw.Handler()),
		admin:  httptest.NewServer(gw.AdminHandler()),
		reg:    reg,
	}
	t.Cleanup(func() {
		env.srv.Close()
		env.admin.Close()
		gw.Close()
	})
	return env
}

// post sends one JSON body and returns status plus the raw response body.
func post(t testing.TB, url string, body any, hdr map[string]string) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func decodeResp[T any](t testing.TB, raw []byte) *T {
	t.Helper()
	out := new(T)
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		t.Fatalf("decoding response %s: %v", raw, err)
	}
	return out
}

func intp(v int64) *int64 { x := v; return &x }
func partp(v int) *int    { x := v; return &x }

// TestWireBitIdentity pins the gateway's core contract: for every query
// kind, the JSON round-trip over the wire yields exactly the answer a
// direct Server.ServeCtx call produces — float64s compared by bits.
func TestWireBitIdentity(t *testing.T) {
	fx := makeFixture(t, 300, 1)
	env := newEnv(t, fx, Options{})
	url := env.srv.URL + "/v1/query"

	t.Run("sssp", func(t *testing.T) {
		for _, src := range []int64{0, 7, int64(fx.g.NumNodes() - 1)} {
			status, raw := post(t, url, QueryRequest{Kind: "sssp", Source: intp(src)}, nil)
			if status != 200 {
				t.Fatalf("status %d: %s", status, raw)
			}
			got := decodeResp[QueryResponse](t, raw)
			want, err := env.direct.ServeSSSP(graph.NodeID(src))
			if err != nil {
				t.Fatal(err)
			}
			if got.SSSP == nil || got.SSSP.Source != src {
				t.Fatalf("bad sssp payload: %s", raw)
			}
			if len(got.SSSP.Dist) != len(want.Dist) {
				t.Fatalf("dist length %d, want %d", len(got.SSSP.Dist), len(want.Dist))
			}
			for i := range want.Dist {
				if math.Float64bits(got.SSSP.Dist[i]) != math.Float64bits(want.Dist[i]) {
					t.Fatalf("src %d: dist[%d] = %v, want %v (bit mismatch)", src, i, got.SSSP.Dist[i], want.Dist[i])
				}
			}
			if got.Rounds != want.Rounds || got.Messages != want.Messages {
				t.Fatalf("cost (%d,%d), want (%d,%d)", got.Rounds, got.Messages, want.Rounds, want.Messages)
			}
		}
	})

	t.Run("mst", func(t *testing.T) {
		status, raw := post(t, url, QueryRequest{Kind: "mst"}, nil)
		if status != 200 {
			t.Fatalf("status %d: %s", status, raw)
		}
		got := decodeResp[QueryResponse](t, raw)
		a, err := env.direct.Serve(serve.MSTQuery{})
		if err != nil {
			t.Fatal(err)
		}
		want := a.(*serve.MSTAnswer)
		if got.MST == nil || math.Float64bits(got.MST.Weight) != math.Float64bits(want.Weight) {
			t.Fatalf("mst weight mismatch: %s", raw)
		}
		if len(got.MST.Edges) != len(want.Tree) {
			t.Fatalf("tree size %d, want %d", len(got.MST.Edges), len(want.Tree))
		}
		for i := range want.Tree {
			if got.MST.Edges[i] != want.Tree[i] {
				t.Fatalf("tree edge[%d] = %d, want %d", i, got.MST.Edges[i], want.Tree[i])
			}
		}
	})

	t.Run("mincut", func(t *testing.T) {
		status, raw := post(t, url, QueryRequest{Kind: "mincut", Eps: 0.5}, nil)
		if status != 200 {
			t.Fatalf("status %d: %s", status, raw)
		}
		got := decodeResp[QueryResponse](t, raw)
		a, err := env.direct.Serve(serve.MinCutQuery{Eps: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		want := a.(*serve.MinCutAnswer)
		if got.MinCut == nil ||
			math.Float64bits(got.MinCut.Value) != math.Float64bits(want.Value) ||
			got.MinCut.Trees != want.Trees || len(got.MinCut.Side) != len(want.Side) {
			t.Fatalf("mincut mismatch: got %s, want %+v", raw, want)
		}
	})

	t.Run("twoecss", func(t *testing.T) {
		status, raw := post(t, url, QueryRequest{Kind: "twoecss"}, nil)
		if status != 200 {
			t.Fatalf("status %d: %s", status, raw)
		}
		got := decodeResp[QueryResponse](t, raw)
		a, err := env.direct.Serve(serve.TwoECSSQuery{})
		if err != nil {
			t.Fatal(err)
		}
		want := a.(*serve.TwoECSSAnswer)
		if got.TwoECSS == nil ||
			math.Float64bits(got.TwoECSS.Weight) != math.Float64bits(want.Weight) ||
			math.Float64bits(got.TwoECSS.LowerBound) != math.Float64bits(want.LowerBound) ||
			math.Float64bits(got.TwoECSS.Ratio) != math.Float64bits(want.Ratio) ||
			len(got.TwoECSS.Edges) != len(want.Edges) {
			t.Fatalf("twoecss mismatch: got %s, want %+v", raw, want)
		}
	})

	t.Run("quality", func(t *testing.T) {
		status, raw := post(t, url, QueryRequest{Kind: "quality", Part: partp(3)}, nil)
		if status != 200 {
			t.Fatalf("status %d: %s", status, raw)
		}
		got := decodeResp[QueryResponse](t, raw)
		a, err := env.direct.Serve(serve.QualityQuery{Part: 3})
		if err != nil {
			t.Fatal(err)
		}
		want := a.(*serve.QualityAnswer)
		if got.Quality == nil || got.Quality.Part != want.Part ||
			got.Quality.Congestion != want.Quality.Congestion ||
			got.Quality.DilationLo != want.Quality.DilationLo ||
			got.Quality.DilationHi != want.Quality.DilationHi ||
			got.Quality.Exact != want.Quality.Exact {
			t.Fatalf("quality mismatch: got %s, want %+v", raw, want)
		}
	})
}

// TestBatchEndpoint pins /v1/batch: the answer list is aligned with the
// query list and each answer matches its direct equivalent.
func TestBatchEndpoint(t *testing.T) {
	fx := makeFixture(t, 300, 2)
	env := newEnv(t, fx, Options{})

	req := BatchRequest{Queries: []QueryRequest{
		{Kind: "sssp", Source: intp(3)},
		{Kind: "mst"},
		{Kind: "sssp", Source: intp(3)}, // duplicate root — coalesced in-batch
		{Kind: "quality", Part: partp(1)},
	}}
	status, raw := post(t, env.srv.URL+"/v1/batch", req, nil)
	if status != 200 {
		t.Fatalf("status %d: %s", status, raw)
	}
	got := decodeResp[BatchResponse](t, raw)
	if len(got.Answers) != len(req.Queries) {
		t.Fatalf("%d answers, want %d", len(got.Answers), len(req.Queries))
	}
	want, err := env.direct.ServeSSSP(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 2} {
		a := got.Answers[idx]
		if a.Kind != "sssp" || a.SSSP == nil || len(a.SSSP.Dist) != len(want.Dist) {
			t.Fatalf("answers[%d] malformed: %+v", idx, a)
		}
		for i := range want.Dist {
			if math.Float64bits(a.SSSP.Dist[i]) != math.Float64bits(want.Dist[i]) {
				t.Fatalf("answers[%d].dist[%d] = %v, want %v", idx, i, a.SSSP.Dist[i], want.Dist[i])
			}
		}
	}
	if got.Answers[1].MST == nil || got.Answers[3].Quality == nil {
		t.Fatalf("kind-mismatched batch answers: %s", raw)
	}
}

// TestErrorMapping pins the HTTP error surface end to end: malformed and
// invalid requests map to the taxonomy's status codes with machine-readable
// kinds in the body.
func TestErrorMapping(t *testing.T) {
	fx := makeFixture(t, 200, 3)
	env := newEnv(t, fx, Options{})
	url := env.srv.URL + "/v1/query"

	cases := []struct {
		name   string
		body   string
		hdr    map[string]string
		status int
		kind   string
	}{
		{"malformed json", `{"kind": `, nil, 400, "invalid input"},
		{"unknown field", `{"kind":"mst","bogus":1}`, nil, 400, "invalid input"},
		{"unknown kind", `{"kind":"pagerank"}`, nil, 400, "invalid input"},
		{"sssp without source", `{"kind":"sssp"}`, nil, 400, "invalid input"},
		{"source out of range", `{"kind":"sssp","source":4294967296}`, nil, 400, "invalid input"},
		{"trailing data", `{"kind":"mst"} {"kind":"mst"}`, nil, 400, "invalid input"},
		{"bad timeout header", `{"kind":"mst"}`, map[string]string{"Request-Timeout": "soon"}, 400, "invalid input"},
		{"expired deadline", `{"kind":"mst"}`, map[string]string{"Request-Timeout": "1ns"}, 504, "deadline exceeded"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest("POST", url, bytes.NewReader([]byte(c.body)))
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range c.hdr {
				req.Header.Set(k, v)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.status, raw)
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("error body is not ErrorResponse JSON: %s", raw)
			}
			if e.Kind != c.kind {
				t.Fatalf("kind %q, want %q", e.Kind, c.kind)
			}
		})
	}

	// GET on a POST-only route is the mux's 405, not a gateway error.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
}

// TestDeltaEndpoint applies an insert-only delta over the wire and checks
// the swapped-in snapshot answers like a direct ApplyDelta: same MST
// weight, bumped epoch and generation, live-traffic continuity.
func TestDeltaEndpoint(t *testing.T) {
	fx := makeFixture(t, 250, 4)
	env := newEnv(t, fx, Options{})

	// Find two non-adjacent nodes for a fresh edge.
	var u, v graph.NodeID = -1, -1
findPair:
	for a := graph.NodeID(0); int(a) < fx.g.NumNodes(); a++ {
		for b := a + 1; int(b) < fx.g.NumNodes(); b++ {
			if !fx.g.HasEdge(a, b) {
				u, v = a, b
				break findPair
			}
		}
	}
	if u < 0 {
		t.Skip("complete graph — no insertable edge")
	}

	status, raw := post(t, env.srv.URL+"/v1/delta", DeltaRequest{
		Insert: []WireEdge{{U: int64(u), V: int64(v), W: 0.25}},
	}, nil)
	if status != 200 {
		t.Fatalf("delta status %d: %s", status, raw)
	}
	got := decodeResp[DeltaResponse](t, raw)
	if got.Inserted != 1 || got.Deleted != 0 {
		t.Fatalf("delta counts %+v, want 1 insert", got)
	}
	if got.Generation != fx.snap.Generation()+1 {
		t.Fatalf("generation %d, want %d", got.Generation, fx.snap.Generation()+1)
	}
	if got.Epoch != env.store.Epoch() {
		t.Fatalf("epoch %d, want store's %d", got.Epoch, env.store.Epoch())
	}

	// The oracle: the same delta applied directly to the original snapshot.
	want, err := serve.ApplyDelta(context.Background(), fx.snap, graph.Delta{
		Insert: []graph.DeltaEdge{{U: u, V: v, W: 0.25}},
	}, serve.DeltaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := serve.NewServer(want, serve.ServerOptions{Seed: 7})
	wa, err := oracle.Serve(serve.MSTQuery{})
	if err != nil {
		t.Fatal(err)
	}
	status, raw = post(t, env.srv.URL+"/v1/query", QueryRequest{Kind: "mst"}, nil)
	if status != 200 {
		t.Fatalf("post-delta query status %d: %s", status, raw)
	}
	qr := decodeResp[QueryResponse](t, raw)
	if math.Float64bits(qr.MST.Weight) != math.Float64bits(wa.(*serve.MSTAnswer).Weight) {
		t.Fatalf("post-delta MST weight %v, want %v", qr.MST.Weight, wa.(*serve.MSTAnswer).Weight)
	}
}

// TestSwapEndpoint ships a persisted snapshot through /v1/snapshot/swap:
// a fresh-chain file swaps in (Drained true, epoch bumped), replaying the
// then-stale active state is rejected with 400, and a missing file is a
// non-200 without disturbing the active snapshot.
func TestSwapEndpoint(t *testing.T) {
	// Registered before newEnv, so the LIFO cleanup order runs it after the
	// env's listeners shut down — pinning that a swap leaves nothing behind.
	t.Cleanup(testx.LeakCheck(t.Fatalf))
	fx := makeFixture(t, 200, 5)
	other := makeFixture(t, 200, 6) // different seed → different build chain
	path := filepath.Join(t.TempDir(), "other.lcs")
	if err := serve.WriteSnapshotFile(path, other.snap); err != nil {
		t.Fatal(err)
	}

	env := newEnv(t, fx, Options{})
	epoch0 := env.store.Epoch()

	status, raw := post(t, env.srv.URL+"/v1/snapshot/swap", SwapRequest{Path: path}, nil)
	if status != 200 {
		t.Fatalf("swap status %d: %s", status, raw)
	}
	got := decodeResp[SwapResponse](t, raw)
	if !got.Drained || got.Epoch != epoch0+1 {
		t.Fatalf("swap response %+v, want drained at epoch %d", got, epoch0+1)
	}

	// Queries now answer from the shipped snapshot.
	oracle := serve.NewServer(other.snap, serve.ServerOptions{Seed: 7})
	wa, err := oracle.Serve(serve.MSTQuery{})
	if err != nil {
		t.Fatal(err)
	}
	status, raw = post(t, env.srv.URL+"/v1/query", QueryRequest{Kind: "mst"}, nil)
	if status != 200 {
		t.Fatalf("post-swap query status %d: %s", status, raw)
	}
	qr := decodeResp[QueryResponse](t, raw)
	if math.Float64bits(qr.MST.Weight) != math.Float64bits(wa.(*serve.MSTAnswer).Weight) {
		t.Fatalf("post-swap MST weight %v, want %v", qr.MST.Weight, wa.(*serve.MSTAnswer).Weight)
	}

	// Replaying the same file is now a same-chain, same-generation swap —
	// the store's stale-rollback protection turns it into a 400.
	status, raw = post(t, env.srv.URL+"/v1/snapshot/swap", SwapRequest{Path: path}, nil)
	if status != 400 {
		t.Fatalf("stale swap status %d, want 400: %s", status, raw)
	}
	if e := decodeResp[ErrorResponse](t, raw); e.Kind != reproerr.KindInvalidInput.String() {
		t.Fatalf("stale swap kind %q", e.Kind)
	}

	// A missing file must fail without touching the active epoch.
	epoch := env.store.Epoch()
	status, _ = post(t, env.srv.URL+"/v1/snapshot/swap", SwapRequest{Path: path + ".missing"}, nil)
	if status == 200 {
		t.Fatal("swap of missing file succeeded")
	}
	if env.store.Epoch() != epoch {
		t.Fatal("failed swap moved the epoch")
	}
}

// TestAdminEndpoints pins the admin mux: /healthz always serves, /readyz
// flips to 503 once the gateway drains, and /metrics carries both the
// gateway's and the serve layer's instrument families.
func TestAdminEndpoints(t *testing.T) {
	fx := makeFixture(t, 200, 7)
	env := newEnv(t, fx, Options{BatchWindow: 2 * time.Millisecond})

	// Generate some traffic so the counters are non-zero.
	for i := 0; i < 4; i++ {
		status, raw := post(t, env.srv.URL+"/v1/query", QueryRequest{Kind: "sssp", Source: intp(1)}, nil)
		if status != 200 {
			t.Fatalf("query status %d: %s", status, raw)
		}
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(env.admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if st, body := get("/healthz"); st != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", st, body)
	}
	if st, _ := get("/readyz"); st != 200 {
		t.Fatalf("readyz before drain: %d", st)
	}
	st, body := get("/metrics")
	if st != 200 {
		t.Fatalf("metrics: %d", st)
	}
	for _, want := range []string{
		"lcs_gateway_requests_total{endpoint=\"query\"} 4",
		"lcs_gateway_latency_ns",
		"lcs_gateway_queue_depth",
		"lcs_gateway_coalesce_in_total",
		"lcs_serve_latency_ns", // serve layer shares the registry
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, body)
		}
	}

	env.gw.Close()
	if st, _ := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", st)
	}
}
