package gateway

import (
	"encoding/json"
	"math"
	"testing"
)

// TestDistVectorRoundTrip pins the Inf↔null wire encoding: +Inf
// (sssp.Infinite, unreachable) marshals as null and comes back as +Inf,
// and every finite float64 survives the round trip bit-exactly.
func TestDistVectorRoundTrip(t *testing.T) {
	in := DistVector{
		0, 1.5, math.Inf(1), 0.1 + 0.2, // 0.30000000000000004 — needs full precision
		math.SmallestNonzeroFloat64, math.MaxFloat64, 1e-300,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out DistVector
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	if len(out) != len(in) {
		t.Fatalf("length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
			t.Fatalf("[%d] %v → %s → %v: bits differ", i, in[i], raw, out[i])
		}
	}

	// NaN and -Inf have no wire representation — marshaling must fail
	// loudly rather than emit invalid JSON.
	for _, bad := range []float64{math.NaN(), math.Inf(-1)} {
		if _, err := json.Marshal(DistVector{bad}); err == nil {
			t.Fatalf("marshal of %v succeeded", bad)
		}
	}

	// A nil vector is JSON null both ways.
	raw, err = json.Marshal(DistVector(nil))
	if err != nil || string(raw) != "null" {
		t.Fatalf("nil vector → %s, %v", raw, err)
	}
}

// TestQueryValidation pins toQuery's rejection surface: every malformed
// request is a typed KindInvalidInput, never a panic or a silent default.
func TestQueryValidation(t *testing.T) {
	src := func(v int64) *int64 { return &v }
	part := func(v int) *int { return &v }
	bad := []QueryRequest{
		{},                              // missing kind
		{Kind: "pagerank"},              // unknown kind
		{Kind: "sssp"},                  // missing source
		{Kind: "sssp", Source: src(-1)}, // negative source
		{Kind: "sssp", Source: src(math.MaxInt32 + 1)},
		{Kind: "mincut", Eps: -1},
		{Kind: "mincut", Eps: math.Inf(1)},
		{Kind: "mincut", Eps: math.NaN()},
		{Kind: "mincut", Eps: 1e-9}, // below the 1/eps cost floor
		{Kind: "quality"},           // missing part
	}
	for i, q := range bad {
		if _, err := q.toQuery(); err == nil {
			t.Errorf("bad[%d] %+v: accepted", i, q)
		}
	}
	good := []QueryRequest{
		{Kind: "sssp", Source: src(0)},
		{Kind: "mst"},
		{Kind: "mincut"},
		{Kind: "mincut", Eps: 0.5},
		{Kind: "twoecss"},
		{Kind: "quality", Part: part(0)},
	}
	for i, q := range good {
		if _, err := q.toQuery(); err != nil {
			t.Errorf("good[%d] %+v: rejected: %v", i, q, err)
		}
	}
}
