package gateway

import (
	"bytes"
	"context"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
)

// BenchmarkGatewaySSSPWarmCore is the gateway's below-HTTP hot path with a
// live instrument set: admission (slot acquire, depth gauge, peak CAS),
// executor checkout, and the preallocated-row warm sssp serve. CI's
// benchmark smoke asserts this stays at 0 allocs/op — the gateway layer
// must add control, not garbage; the JSON codec above it is the wire
// format's price, measured separately below.
func BenchmarkGatewaySSSPWarmCore(b *testing.B) {
	fx := makeFixture(b, 2_000, 31)
	reg := obs.New()
	srv := serve.NewServer(fx.snap, serve.ServerOptions{Executors: 1, Metrics: reg})
	gw, err := New(srv, Options{QueueDepth: 4, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	ctx := context.Background()
	dst := make([]float64, fx.g.NumNodes())
	if dst, err = gw.ssspCore(ctx, dst, 0); err != nil { // warm the executor
		b.Fatal(err)
	}
	// Collect fixture and warm-up garbage before the timed window: at
	// -benchtime=1x a background GC landing inside it reads as spurious
	// allocs/op in the zero-alloc gate.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = gw.ssspCore(ctx, dst, graph.NodeID(i%fx.g.NumNodes()))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayQueryHTTP measures the full wire path — mux, JSON
// decode, serve, JSON encode — for the wire-overhead comparison against
// the core above. Allocates by design (the codec); not part of the
// zero-alloc gate.
func BenchmarkGatewayQueryHTTP(b *testing.B) {
	fx := makeFixture(b, 2_000, 31)
	srv := serve.NewServer(fx.snap, serve.ServerOptions{Executors: 1})
	gw, err := New(srv, Options{QueueDepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer gw.Close()
	h := gw.Handler()
	body := []byte(`{"kind":"sssp","source":0}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
}
