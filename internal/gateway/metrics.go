package gateway

import (
	"repro/internal/obs"
)

// endpoint codes index the per-endpoint instrument arrays — fixed at
// construction so the hot path never does a map lookup or label formatting.
const (
	epQuery = iota
	epBatch
	epDelta
	epSwap
	numEndpoints
)

var endpointNames = [numEndpoints]string{"query", "batch", "delta", "swap"}

// gwMetrics is the gateway's instrument set, registered once on the shared
// obs.Registry at construction. All instruments are nil when the gateway is
// uninstrumented — every write below is a nil-receiver no-op, so the
// request path carries no conditionals and stays allocation-free either
// way.
type gwMetrics struct {
	requests [numEndpoints]*obs.Counter   // lcs_gateway_requests_total{endpoint}
	errors   [numEndpoints]*obs.Counter   // lcs_gateway_errors_total{endpoint}
	latency  [numEndpoints]*obs.Histogram // lcs_gateway_latency_ns{endpoint}
	shed     *obs.Counter                 // lcs_gateway_shed_total
	depth    *obs.Gauge                   // lcs_gateway_queue_depth
	depthPk  *obs.Gauge                   // lcs_gateway_queue_depth_peak
	admitNs  *obs.Histogram               // lcs_gateway_admit_wait_ns
	coalIn   *obs.Counter                 // lcs_gateway_coalesce_in_total
	coalOut  *obs.Counter                 // lcs_gateway_coalesce_out_total
	window   *obs.Histogram               // lcs_gateway_window_batch
}

// newGwMetrics registers the gateway instrument set on reg. A nil registry
// yields an all-nil (uninstrumented) set; the struct itself is always
// non-nil so call sites never branch.
func newGwMetrics(reg *obs.Registry) *gwMetrics {
	m := &gwMetrics{}
	for ep := 0; ep < numEndpoints; ep++ {
		m.requests[ep] = reg.Counter("lcs_gateway_requests_total", "endpoint", endpointNames[ep])
		m.errors[ep] = reg.Counter("lcs_gateway_errors_total", "endpoint", endpointNames[ep])
		m.latency[ep] = reg.Histogram("lcs_gateway_latency_ns", "endpoint", endpointNames[ep])
	}
	m.shed = reg.Counter("lcs_gateway_shed_total")
	m.depth = reg.Gauge("lcs_gateway_queue_depth")
	m.depthPk = reg.Gauge("lcs_gateway_queue_depth_peak")
	m.admitNs = reg.Histogram("lcs_gateway_admit_wait_ns")
	m.coalIn = reg.Counter("lcs_gateway_coalesce_in_total")
	m.coalOut = reg.Counter("lcs_gateway_coalesce_out_total")
	m.window = reg.Histogram("lcs_gateway_window_batch")
	return m
}

// admitted records one slot acquisition: current depth and its peak.
func (m *gwMetrics) admitted(depth int64) {
	m.depth.Set(depth)
	m.depthPk.SetMax(depth)
}

// released records one slot release.
func (m *gwMetrics) released(depth int64) {
	m.depth.Set(depth)
}

// flush records one coalescing window flush: in queries folded into out
// distinct roots.
func (m *gwMetrics) flush(in, out int) {
	m.coalIn.Add(int64(in))
	m.coalOut.Add(int64(out))
	m.window.Observe(int64(in))
}
