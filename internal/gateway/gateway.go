// Package gateway is the network front end of the serving stack: an
// HTTP/JSON surface over serve.Server and serve.Store exposing the five
// query kinds, batched queries, live delta application, and snapshot
// shipping, with three concerns the library layer deliberately does not
// own:
//
//   - admission control: a bounded slot pool sized from the executor pool;
//     requests beyond capacity are shed immediately with 429
//     (reproerr.KindBudgetExceeded) instead of queuing unboundedly, and
//     per-request deadlines arrive via the Request-Timeout header;
//   - request coalescing: sssp queries landing within a configurable batch
//     window are folded into one ServeBatchCtx execution whose duplicate-
//     root coalescing answers identical roots with a single traversal;
//   - observability: per-endpoint request/error/latency instruments plus
//     queue-depth, shed, and coalescing counters on the same obs.Registry
//     the serve layer writes, exposed on an admin mux
//     (/metrics, /healthz, /readyz).
//
// Everything below the HTTP layer — admission, executor checkout, the warm
// sssp path — stays allocation-free; the JSON codec is the only allocating
// stage, and it is the wire format's price, not the gateway's.
package gateway

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/reproerr"
	"repro/internal/serve"
)

// Options configures a Gateway. The zero value serves: admission defaults
// to 4× the server's executor pool, coalescing is off (BatchWindow 0), and
// the gateway is uninstrumented.
type Options struct {
	// QueueDepth caps the number of requests admitted at once — executing
	// or parked in a coalescing window. Requests beyond it are shed with
	// 429. 0 selects 4× the server's executor pool.
	QueueDepth int
	// BatchWindow is the sssp coalescing window: the first sssp query opens
	// a window, every sssp query arriving within it joins the same batched
	// execution. 0 disables coalescing (every query serves directly).
	BatchWindow time.Duration
	// MaxBatch flushes a window early once this many queries are parked.
	// 0 selects 64, the bit-parallel kernel's word width.
	MaxBatch int
	// DefaultTimeout bounds requests that carry no Request-Timeout header.
	// 0 means no implicit deadline.
	DefaultTimeout time.Duration
	// DeltaWorkers selects the scheduler parallelism of /v1/delta repairs
	// (serve.DeltaOptions.Workers); 0 = sequential, identical results
	// either way.
	DeltaWorkers int
	// DeltaMaxRounds bounds each delta repair's scheduled verification
	// phases (0 = default).
	DeltaMaxRounds int
	// Metrics attaches the gateway's instrument set. Pass the same registry
	// as the server's so /metrics exposes both layers in one scrape. nil =
	// uninstrumented.
	Metrics *obs.Registry
}

// Gateway is the HTTP front end over one serve.Server. Create with New,
// mount Handler on the serving listener and AdminHandler on the admin
// listener, and Close on shutdown (flushes coalescing windows and waits for
// their executions — no goroutine outlives Close).
type Gateway struct {
	srv   *serve.Server
	store *serve.Store
	opts  Options
	slots chan struct{}
	co    *coalescer
	m     *gwMetrics

	base   context.Context
	cancel context.CancelFunc

	// deltaMu serializes the two mutating endpoints (/v1/delta and
	// /v1/snapshot/swap): repairs apply to the snapshot they loaded, so two
	// concurrent repairs would silently drop one delta without it.
	deltaMu sync.Mutex

	draining  atomic.Bool
	closeOnce sync.Once
}

// errShed is the preallocated admission rejection — shedding under
// overload must not allocate.
var errShed = reproerr.New("gateway.admit", reproerr.KindBudgetExceeded,
	nil)

// New wraps srv in a Gateway. The server's store (if any) powers /v1/delta
// and /v1/snapshot/swap; a storeless server rejects those endpoints with
// 400.
func New(srv *serve.Server, opts Options) (*Gateway, error) {
	const op = "gateway.New"
	if srv == nil {
		return nil, reproerr.Invalid(op, "nil server")
	}
	if opts.QueueDepth < 0 {
		return nil, reproerr.Invalid(op, "QueueDepth %d must be >= 0", opts.QueueDepth)
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 4 * srv.Executors()
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	if opts.BatchWindow < 0 {
		return nil, reproerr.Invalid(op, "BatchWindow %v must be >= 0", opts.BatchWindow)
	}
	g := &Gateway{
		srv:   srv,
		store: srv.Store(),
		opts:  opts,
		slots: make(chan struct{}, opts.QueueDepth),
		m:     newGwMetrics(opts.Metrics),
	}
	g.base, g.cancel = context.WithCancel(context.Background())
	if opts.BatchWindow > 0 {
		g.co = newCoalescer(srv, g.base, opts.BatchWindow, opts.MaxBatch, g.m)
	}
	return g, nil
}

// Close drains the gateway: flushes any open coalescing window, waits for
// its executions, and cancels the gateway's base context. Requests arriving
// after Close are shed via /readyz-visible draining state; Close is
// idempotent.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		g.draining.Store(true)
		if g.co != nil {
			g.co.close()
		}
		g.cancel()
	})
}

// Handler returns the serving mux: the four /v1 endpoints, POST-only.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", g.handleQuery)
	mux.HandleFunc("POST /v1/batch", g.handleBatch)
	mux.HandleFunc("POST /v1/delta", g.handleDelta)
	mux.HandleFunc("POST /v1/snapshot/swap", g.handleSwap)
	return mux
}

// AdminHandler returns the admin mux: Prometheus/JSON metrics (when the
// gateway has a registry), liveness, and readiness.
func (g *Gateway) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	if g.opts.Metrics != nil {
		mux.Handle("/metrics", obs.Handler(g.opts.Metrics))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if g.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
	return mux
}

// admit claims one admission slot, shedding immediately when the pool is
// full — the gateway never queues beyond its configured depth.
func (g *Gateway) admit() error {
	select {
	case g.slots <- struct{}{}:
		g.m.admitted(int64(len(g.slots)))
		return nil
	default:
		g.m.shed.Inc()
		return errShed
	}
}

// done releases an admission slot.
func (g *Gateway) done() {
	<-g.slots
	g.m.released(int64(len(g.slots)))
}

// requestCtx derives the request's execution context: the client's
// connection context bounded by the Request-Timeout header (a Go duration
// like "250ms", or a bare number of seconds), falling back to
// DefaultTimeout. The returned cancel must always be called.
func (g *Gateway) requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	timeout := g.opts.DefaultTimeout
	if h := r.Header.Get("Request-Timeout"); h != "" {
		d, err := parseRequestTimeout(h)
		if err != nil {
			return nil, nil, err
		}
		timeout = d
	}
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		return ctx, cancel, nil
	}
	ctx, cancel := context.WithCancel(r.Context())
	return ctx, cancel, nil
}

// parseRequestTimeout maps a Request-Timeout header value to a positive
// duration. Every malformed value — non-numeric, NaN, ±Inf, zero, negative,
// or out of range — is a typed KindInvalidInput (a 400 on the wire), never
// silently ignored: a zero or negative value accepted here would mint an
// already-expired context and miscount a client mistake as a 504 deadline.
// Values larger than the representable range clamp to the maximum duration
// (semantically "no practical deadline") rather than overflowing into
// platform-defined float→int conversion garbage.
func parseRequestTimeout(h string) (time.Duration, error) {
	const op = "gateway.timeout"
	d, err := time.ParseDuration(h)
	if err != nil {
		secs, serr := strconv.ParseFloat(h, 64)
		if serr != nil || math.IsNaN(secs) || math.IsInf(secs, 0) {
			return 0, reproerr.Invalid(op,
				"invalid Request-Timeout %q: want a positive Go duration or seconds", h)
		}
		if secs >= float64(math.MaxInt64)/float64(time.Second) {
			return math.MaxInt64, nil
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d <= 0 {
		return 0, reproerr.Invalid(op,
			"non-positive Request-Timeout %q: the deadline would already have expired", h)
	}
	return d, nil
}

// handleQuery serves POST /v1/query: one typed query, coalesced into the
// current batch window when it is an sssp query and coalescing is on.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.m.requests[epQuery].Inc()
	defer g.m.latency[epQuery].ObserveSince(t0)

	var req QueryRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		g.writeError(w, epQuery, err)
		return
	}
	q, err := req.toQuery()
	if err != nil {
		g.writeError(w, epQuery, err)
		return
	}
	if err := g.admit(); err != nil {
		g.writeError(w, epQuery, err)
		return
	}
	defer g.done()
	ctx, cancel, err := g.requestCtx(r)
	if err != nil {
		g.writeError(w, epQuery, err)
		return
	}
	defer cancel()

	ans, err := g.serveQuery(ctx, q)
	if err != nil {
		g.writeError(w, epQuery, err)
		return
	}
	g.writeJSON(w, http.StatusOK, answerToResponse(ans))
}

// serveQuery routes one admitted query: sssp through the coalescer when a
// window is configured, everything else directly to the server.
func (g *Gateway) serveQuery(ctx context.Context, q serve.Query) (serve.Answer, error) {
	if g.co != nil {
		if sq, ok := q.(serve.SSSPQuery); ok {
			if ch, ok := g.co.enqueue(sq.Source); ok {
				select {
				case res := <-ch:
					if res.err != nil {
						return nil, res.err
					}
					return res.ans, nil
				case <-ctx.Done():
					// The waiter's slot in the window still gets served;
					// its 1-buffered channel absorbs the unread result.
					return nil, reproerr.FromContext("gateway.coalesce", ctx.Err())
				}
			}
		}
	}
	return g.srv.ServeCtx(ctx, q)
}

// handleBatch serves POST /v1/batch: the query list runs as one
// ServeBatchCtx execution (one admission slot, one executor checkout), so
// in-batch duplicate-root coalescing applies exactly as in the library.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.m.requests[epBatch].Inc()
	defer g.m.latency[epBatch].ObserveSince(t0)

	var req BatchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		g.writeError(w, epBatch, err)
		return
	}
	if len(req.Queries) == 0 {
		g.writeError(w, epBatch, reproerr.Invalid("gateway.batch", "empty batch"))
		return
	}
	queries := make([]serve.Query, len(req.Queries))
	for i := range req.Queries {
		q, err := req.Queries[i].toQuery()
		if err != nil {
			g.writeError(w, epBatch, reproerr.Errorf("gateway.batch",
				reproerr.KindInvalidInput, "queries[%d]: %w", i, err))
			return
		}
		queries[i] = q
	}
	if err := g.admit(); err != nil {
		g.writeError(w, epBatch, err)
		return
	}
	defer g.done()
	ctx, cancel, err := g.requestCtx(r)
	if err != nil {
		g.writeError(w, epBatch, err)
		return
	}
	defer cancel()

	answers, err := g.srv.ServeBatchCtx(ctx, queries)
	if err != nil {
		g.writeError(w, epBatch, err)
		return
	}
	resp := BatchResponse{Answers: make([]*QueryResponse, len(answers))}
	for i, a := range answers {
		resp.Answers[i] = answerToResponse(a)
	}
	g.writeJSON(w, http.StatusOK, &resp)
}

// handleDelta serves POST /v1/delta: apply a batch of edge mutations to the
// active snapshot and swap the repaired snapshot in under live traffic.
// Mutations are serialized (deltaMu); queries keep flowing throughout — the
// epoch protocol retires the old snapshot only after its readers drain.
func (g *Gateway) handleDelta(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.m.requests[epDelta].Inc()
	defer g.m.latency[epDelta].ObserveSince(t0)

	if g.store == nil {
		g.writeError(w, epDelta, reproerr.Invalid("gateway.delta",
			"server has no store: deltas need a swappable snapshot"))
		return
	}
	var req DeltaRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		g.writeError(w, epDelta, err)
		return
	}
	delta, err := req.toDelta()
	if err != nil {
		g.writeError(w, epDelta, err)
		return
	}
	ctx, cancel, err := g.requestCtx(r)
	if err != nil {
		g.writeError(w, epDelta, err)
		return
	}
	defer cancel()

	g.deltaMu.Lock()
	defer g.deltaMu.Unlock()
	repaired, err := serve.ApplyDelta(ctx, g.store.Snapshot(), delta, serve.DeltaOptions{
		Workers:   g.opts.DeltaWorkers,
		MaxRounds: g.opts.DeltaMaxRounds,
	})
	if err != nil {
		g.writeError(w, epDelta, err)
		return
	}
	repairMs := float64(time.Since(t0)) / float64(time.Millisecond)
	g.store.Swap(repaired)
	resp := DeltaResponse{
		Epoch:      g.store.Epoch(),
		Generation: repaired.Generation(),
		RepairMs:   repairMs,
	}
	if ri := repaired.Repair(); ri != nil {
		resp.Touched = len(ri.Touched)
		resp.Inserted = ri.Inserted
		resp.Deleted = ri.Deleted
		resp.Rechecked = ri.Rechecked
	}
	g.writeJSON(w, http.StatusOK, &resp)
}

// handleSwap serves POST /v1/snapshot/swap: load a persisted snapshot file
// and ship it into the live epoch protocol. The swap is unconditional once
// the file validates; a deadline expiring during the drain wait reports
// success with Drained:false (the retired epoch still had pinned readers).
func (g *Gateway) handleSwap(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	g.m.requests[epSwap].Inc()
	defer g.m.latency[epSwap].ObserveSince(t0)

	if g.store == nil {
		g.writeError(w, epSwap, reproerr.Invalid("gateway.swap",
			"server has no store: snapshot shipping needs a swappable store"))
		return
	}
	var req SwapRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		g.writeError(w, epSwap, err)
		return
	}
	if req.Path == "" {
		g.writeError(w, epSwap, reproerr.Invalid("gateway.swap", "missing snapshot path"))
		return
	}
	lo := serve.LoadOptions{Metrics: g.opts.Metrics}
	if req.Verify != nil && !*req.Verify {
		lo.SkipVerify = true
	}
	if req.Mmap != nil && !*req.Mmap {
		lo.NoMmap = true
	}
	ctx, cancel, err := g.requestCtx(r)
	if err != nil {
		g.writeError(w, epSwap, err)
		return
	}
	defer cancel()

	g.deltaMu.Lock()
	defer g.deltaMu.Unlock()
	retired, err := g.store.SwapFromFileCtx(ctx, req.Path, lo)
	resp := SwapResponse{Drained: err == nil}
	switch k := reproerr.KindOf(err); {
	case err == nil:
		// Fully drained: no query still reads the retired snapshot, so a
		// mapped one can release its file mapping now. Heap snapshots are
		// left to the collector — callers may still hold direct references
		// (a rebuilt-alongside comparison server, say).
		if retired != nil && retired.Mapped() {
			_ = retired.Close()
		}
	case k == reproerr.KindCanceled || k == reproerr.KindDeadline:
		// The swap itself happened — only the drain wait was cut short.
		// The retired epoch keeps draining in the background; its mapping
		// (if any) is intentionally left open for the stragglers.
	default:
		g.writeError(w, epSwap, err)
		return
	}
	resp.Epoch = g.store.Epoch()
	resp.Generation = g.store.Snapshot().Generation()
	g.writeJSON(w, http.StatusOK, &resp)
}

// ssspCore is the below-HTTP hot path the warm benchmark pins at
// 0 allocs/op: admission, executor checkout, and the preallocated-row sssp
// serve, with every gateway-layer write landing on preallocated atomics.
func (g *Gateway) ssspCore(ctx context.Context, dst []float64, src graph.NodeID) ([]float64, error) {
	if err := g.admit(); err != nil {
		return nil, err
	}
	defer g.done()
	return g.srv.ServeSSSPIntoCtx(ctx, dst, src)
}

// writeError renders err as the taxonomy's wire form: status from
// reproerr.HTTPStatus, body carrying the message and machine-readable kind.
func (g *Gateway) writeError(w http.ResponseWriter, ep int, err error) {
	g.m.errors[ep].Inc()
	kind := reproerr.KindOf(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(reproerr.HTTPStatus(kind))
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Kind: kind.String()})
}

// writeJSON renders one success body.
func (g *Gateway) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
