package gateway

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// FuzzGatewayRequest fuzzes the /v1/query decode-and-serve path with
// arbitrary bodies. The contract: the handler never panics, never hangs,
// and always answers either 200 with a well-formed QueryResponse or a
// taxonomy-mapped error status with a well-formed ErrorResponse — every
// malformed body is a typed 400, never a 500.
func FuzzGatewayRequest(f *testing.F) {
	fx := makeFixture(f, 48, 17)
	gw, err := New(serve.NewServer(fx.snap, serve.ServerOptions{Executors: 2, Seed: 7}),
		Options{QueueDepth: 8})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(gw.Close)
	h := gw.Handler()

	for _, seed := range []string{
		`{"kind":"sssp","source":0}`,
		`{"kind":"sssp","source":47}`,
		`{"kind":"mst"}`,
		`{"kind":"mincut","eps":0.5}`,
		`{"kind":"twoecss"}`,
		`{"kind":"quality","part":1}`,
		`{"kind":"sssp"}`,
		`{"kind":"sssp","source":-1}`,
		`{"kind":"sssp","source":99999999999}`,
		`{"kind":"mincut","eps":1e-300}`,
		`{"kind":"quality","part":-5}`,
		`{"kind":"pagerank"}`,
		`{"kind":`,
		`null`,
		`[]`,
		`""`,
		`{"kind":"mst","extra":true}`,
		`{"kind":"mst"} trailing`,
		"\x00\x01\x02",
		``,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		switch rec.Code {
		case 200:
			var resp QueryResponse
			dec := json.NewDecoder(bytes.NewReader(rec.Body.Bytes()))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&resp); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", rec.Body.Bytes(), err)
			}
			if resp.Kind == "" {
				t.Fatalf("200 without a kind: %q", rec.Body.Bytes())
			}
		case 400:
			var e ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("400 with undecodable body %q: %v", rec.Body.Bytes(), err)
			}
			if e.Kind != "invalid input" {
				t.Fatalf("400 with kind %q", e.Kind)
			}
		default:
			// Deadlines/cancellation/shedding can't happen here: no
			// Request-Timeout header, no concurrent load, depth 8. Anything
			// but serve-or-reject is a contract break.
			t.Fatalf("unexpected status %d for body %q: %s", rec.Code, body, rec.Body.Bytes())
		}
	})
}
