package repro

import (
	"repro/internal/gateway"
)

// Network front end: the HTTP/JSON gateway over the serving stack.
//
// A Gateway wraps a Server (fixed-snapshot or store-backed) in the wire
// surface lcsserve deploys: POST /v1/query, /v1/batch, /v1/delta, and
// /v1/snapshot/swap on the serving mux, with /metrics, /healthz, and
// /readyz on a separate admin mux. The gateway owns admission control
// (bounded slots, immediate 429 shedding, Request-Timeout deadlines),
// sssp request coalescing across concurrent clients (WithBatchWindow),
// and its own instrument family on the shared registry:
//
//	reg := repro.NewMetrics()
//	srv, _ := repro.NewStoreServerV2(store, repro.WithMetrics(reg))
//	gw, _ := repro.NewGateway(srv,
//	    repro.WithQueueDepth(64),
//	    repro.WithBatchWindow(2*time.Millisecond),
//	    repro.WithMetrics(reg))
//	defer gw.Close()
//	go http.ListenAndServe(":8080", gw.Handler())
//	http.ListenAndServe(":9090", gw.AdminHandler())
//
// Taxonomy errors map onto HTTP statuses via HTTPStatus/HTTPStatusOf (400
// invalid input, 429 shed, 499 canceled, 504 deadline, 422 corrupt); see
// DESIGN.md "Gateway" for the wire format and semantics.

// Gateway is the HTTP front end over one Server (see internal/gateway).
// Construct with NewGateway; Close flushes open coalescing windows and
// waits for their executions.
type Gateway = gateway.Gateway

// GatewayOptions is the gateway's raw options record. NewGateway assembles
// one from functional options; use the type directly only when bypassing
// the facade.
type GatewayOptions = gateway.Options

// NewGateway wraps srv in the HTTP front end, from functional options:
// WithQueueDepth (admission capacity), WithBatchWindow / WithMaxBatch
// (sssp coalescing), WithRequestTimeout (default deadline), WithWorkers /
// WithMaxRounds (delta repair parallelism and bounds), and WithMetrics.
func NewGateway(srv *Server, opts ...Option) (*Gateway, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return gateway.New(srv, gateway.Options{
		QueueDepth:     cfg.QueueDepth,
		BatchWindow:    cfg.BatchWindow,
		MaxBatch:       cfg.MaxBatch,
		DefaultTimeout: cfg.RequestTimeout,
		DeltaWorkers:   cfg.Workers,
		DeltaMaxRounds: cfg.MaxRounds,
		Metrics:        cfg.Metrics,
	})
}
