// Package repro is a Go implementation of "Low-Congestion Shortcuts in
// Constant Diameter Graphs" (Kogan & Parter, PODC 2021): shortcut
// constructions with quality ˜O(n^((D-2)/(2D-2))) for n-vertex graphs of
// constant diameter D, a CONGEST-model simulator the distributed algorithms
// run on, and the shortcut-powered applications of Corollary 1.2 and
// Section 4 — MST, approximate minimum cut, approximate SSSP, and
// approximate 2-ECSS.
//
// The facade re-exports the library's stable surface; internal packages
// carry the full machinery (see DESIGN.md for the module map).
//
// Quick start:
//
//	g, _ := repro.ClusterChain(10_000, 6, rng)    // diameter-6 graph
//	parts, _ := repro.VoronoiParts(g, 64, rng)    // disjoint connected parts
//	p, _ := repro.NewPartition(g, parts)
//	s, _ := repro.BuildShortcuts(g, p, repro.ShortcutOptions{Diameter: 6, Rng: rng})
//	q, _ := s.Dilation(0)
//	fmt.Println(q) // c=…, d=…
package repro

import (
	"math/rand"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/mst"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/shortcut"
	"repro/internal/sssp"
	"repro/internal/twoecss"
)

// Graph is an immutable simple undirected graph in CSR form with stable
// undirected edge identifiers.
type Graph = graph.Graph

// NodeID identifies a vertex; EdgeID identifies an undirected edge.
type (
	NodeID = graph.NodeID
	EdgeID = graph.EdgeID
)

// Weights assigns a positive weight to every edge, indexed by EdgeID.
type Weights = graph.Weights

// GraphBuilder accumulates edges and produces an immutable Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]NodeID) (*Graph, error) { return graph.FromEdges(n, edges) }

// Partition is a validated collection of vertex-disjoint connected parts
// with max-ID leaders — the input to every shortcut construction.
type Partition = shortcut.Partition

// NewPartition validates the parts (non-empty, disjoint, connected).
func NewPartition(g *Graph, parts [][]NodeID) (*Partition, error) {
	return shortcut.NewPartition(g, parts)
}

// Shortcuts is a computed shortcut assignment with quality measurement.
type Shortcuts = shortcut.Shortcuts

// Quality is a measured (congestion, dilation) pair.
type Quality = shortcut.Quality

// ShortcutOptions configures the centralized construction (see
// shortcut.Options for field semantics).
type ShortcutOptions = shortcut.Options

// BuildShortcuts runs the paper's centralized sampling construction
// (Section 2).
//
// Deprecated: use BuildShortcutsCtx with functional options (WithSeed,
// WithDiameter, …). This adapter maps the v1 struct onto v2 field-for-field,
// so results are bit-identical.
func BuildShortcuts(g *Graph, p *Partition, opts ShortcutOptions) (*Shortcuts, error) {
	return BuildShortcutsCtx(opts.Ctx, g, p, WithRng(opts.Rng), func(c *Config) {
		c.Diameter, c.Reps, c.SamplingBoost = opts.Diameter, opts.Reps, opts.LogFactor
	})
}

// DistShortcutOptions configures the CONGEST-simulated construction.
type DistShortcutOptions = shortcut.DistOptions

// DistShortcutResult is the simulated construction's outcome with exact
// round and message accounting.
type DistShortcutResult = shortcut.DistResult

// BuildShortcutsDistributed runs the full distributed pipeline of Section 2
// (leader election, part classification, numbering, local sampling,
// random-delay scheduled BFS, verification, diameter guessing) on the
// CONGEST simulator.
// Deprecated: use BuildShortcutsDistributedCtx with functional options.
// This adapter maps the v1 struct onto v2 field-for-field, so results are
// bit-identical.
func BuildShortcutsDistributed(g *Graph, p *Partition, opts DistShortcutOptions) (*DistShortcutResult, error) {
	return BuildShortcutsDistributedCtx(opts.Ctx, g, p, WithRng(opts.Rng), func(c *Config) {
		c.SamplingBoost, c.Reps, c.Workers = opts.LogFactor, opts.Reps, opts.Workers
		c.DepthFactor, c.KnownDiameter = opts.DepthFactor, opts.KnownDiameter
		c.MaxRounds, c.CongestionCap = opts.MaxRounds, opts.CongestionCapFactor
	})
}

// GhaffariHaeuplerShortcuts builds the generic O(D+√n)-quality baseline
// shortcuts of [GH16] (experiment E5's comparison arm).
func GhaffariHaeuplerShortcuts(p *Partition, root NodeID) *Shortcuts {
	return shortcut.GhaffariHaeupler(p, root)
}

// BuildShortcutsDeterministic is the derandomized variant exploring the
// paper's derandomization open end: structurally capped congestion,
// empirically-evaluated dilation (experiment A4).
//
// Deprecated: use BuildShortcutsDeterministicCtx with functional options.
func BuildShortcutsDeterministic(g *Graph, p *Partition, opts ShortcutOptions) (*Shortcuts, error) {
	return BuildShortcutsDeterministicCtx(opts.Ctx, g, p, WithRng(opts.Rng), func(c *Config) {
		c.Diameter, c.Reps, c.SamplingBoost = opts.Diameter, opts.Reps, opts.LogFactor
	})
}

// LocalShortcutOptions configures the locality-restricted variant.
type LocalShortcutOptions = shortcut.LocalOptions

// BuildShortcutsLocal is the message-efficient variant exploring the paper's
// message-complexity open end: sampling restricted to the D/2-hop horizon of
// each part (experiment A5).
//
// Deprecated: use BuildShortcutsLocalCtx with functional options.
func BuildShortcutsLocal(g *Graph, p *Partition, opts LocalShortcutOptions) (*Shortcuts, error) {
	return BuildShortcutsLocalCtx(opts.Ctx, g, p, WithRng(opts.Rng), func(c *Config) {
		c.Diameter, c.Reps, c.SamplingBoost = opts.Diameter, opts.Reps, opts.LogFactor
		c.Radius = opts.Radius
	})
}

// TrivialShortcuts is the empty assignment (Hi = ∅).
func TrivialShortcuts(p *Partition) *Shortcuts { return shortcut.Trivial(p) }

// KD returns the paper's quality scale kD = n^((D-2)/(2D-2)).
func KD(n, d int) float64 { return gen.KD(n, d) }

// --- Generators --------------------------------------------------------------

// ClusterChain generates a connected n-vertex graph of diameter exactly d
// with Θ(n) edges — the "typical constant-diameter network" workload.
func ClusterChain(n, d int, rng *rand.Rand) (*Graph, error) { return gen.ClusterChain(n, d, rng) }

// HardInstance is an Elkin/Lotker-style lower-bound-shaped graph with its
// path partition; see gen.HardInstance.
type HardInstance = gen.HardInstance

// NewHardInstance generates a hard instance on ~n vertices of diameter d.
func NewHardInstance(n, d int, rng *rand.Rand) (*HardInstance, error) {
	return gen.NewHardInstance(n, d, 0, 0, rng)
}

// VoronoiParts partitions a connected graph into k connected parts by
// growing balls from random seeds.
func VoronoiParts(g *Graph, k int, rng *rand.Rand) ([][]NodeID, error) {
	return gen.VoronoiParts(g, k, rng)
}

// UniformWeights draws independent edge weights in (0, 1].
func UniformWeights(g *Graph, rng *rand.Rand) Weights {
	return graph.NewUniformWeights(g.NumEdges(), rng)
}

// --- Applications -------------------------------------------------------------

// MST computes the exact minimum spanning tree/forest (Kruskal).
func MST(g *Graph, w Weights) ([]EdgeID, error) { return mst.Kruskal(g, w) }

// MSTDistOptions configures the distributed MST (see mst.DistOptions).
type MSTDistOptions = mst.DistOptions

// MSTDistResult is the distributed MST outcome with cost accounting.
type MSTDistResult = mst.DistResult

// MSTDistributed computes the MST with Borůvka phases through low-congestion
// shortcuts (Corollary 1.2): ˜O(kD) rounds on constant-diameter graphs.
//
// Deprecated: use MSTDistributedCtx with functional options. This adapter
// maps the v1 struct onto v2 field-for-field, so results are bit-identical.
func MSTDistributed(g *Graph, w Weights, opts MSTDistOptions) (*MSTDistResult, error) {
	return MSTDistributedCtx(opts.Ctx, g, w, WithRng(opts.Rng), func(c *Config) {
		c.Diameter, c.SamplingBoost, c.Workers = opts.Diameter, opts.LogFactor, opts.Workers
		c.Baseline, c.SimulateConstruction = opts.Baseline, opts.SimulateConstruction
		c.DepthFactor, c.MaxRounds = opts.DepthFactor, opts.MaxRounds
	})
}

// MinCut computes the exact weighted global minimum cut (Stoer–Wagner).
func MinCut(g *Graph, w Weights) (float64, []NodeID, error) { return mincut.StoerWagner(g, w) }

// MinCutApproxOptions configures the tree-packing approximation.
type MinCutApproxOptions = mincut.ApproxOptions

// MinCutApproxResult is the approximation outcome.
type MinCutApproxResult = mincut.ApproxResult

// MinCutApprox approximates the minimum cut via greedy tree packing over the
// shortcut-MST (Corollary 1.2's reduction; see DESIGN.md substitutions).
//
// Deprecated: use MinCutApproxCtx with functional options (WithEps or
// WithTrees select the packed-tree count).
func MinCutApprox(g *Graph, w Weights, opts MinCutApproxOptions) (*MinCutApproxResult, error) {
	return MinCutApproxCtx(opts.Ctx, g, w, WithRng(opts.Rng), func(c *Config) {
		c.Trees, c.Diameter, c.SamplingBoost = opts.Trees, opts.Diameter, opts.LogFactor
		c.DistributedAccounting, c.Workers, c.Tree = opts.Distributed, opts.Workers, opts.FirstTree
	})
}

// SSSP computes exact shortest-path distances (Dijkstra).
func SSSP(g *Graph, w Weights, src NodeID) ([]float64, error) { return sssp.Dijkstra(g, w, src) }

// SSSPTreeOptions configures the shortcut-tree approximate SSSP.
type SSSPTreeOptions = sssp.TreeOptions

// SSSPTreeResult is the approximate SSSP outcome.
type SSSPTreeResult = sssp.TreeResult

// SSSPApprox computes approximate SSSP distances through the shortcut-MST
// (Corollary 4.2's reduction shape; stretch measured, not guaranteed).
//
// Deprecated: use SSSPApproxCtx with functional options.
func SSSPApprox(g *Graph, w Weights, src NodeID, opts SSSPTreeOptions) (*SSSPTreeResult, error) {
	return SSSPApproxCtx(opts.Ctx, g, w, src, WithRng(opts.Rng), func(c *Config) {
		c.Diameter, c.SamplingBoost, c.Workers = opts.Diameter, opts.LogFactor, opts.Workers
		c.MaxRounds = opts.MaxRounds
	})
}

// TwoECSSOptions configures the 2-ECSS approximation.
type TwoECSSOptions = twoecss.Options

// TwoECSSResult is the 2-ECSS outcome.
type TwoECSSResult = twoecss.Result

// TwoECSS computes an approximate minimum-weight two-edge-connected spanning
// subgraph (Corollary 4.3's reduction shape).
//
// Deprecated: use TwoECSSCtx with functional options (WithTree supplies a
// prebuilt spanning tree and lifts the randomness requirement).
func TwoECSS(g *Graph, w Weights, opts TwoECSSOptions) (*TwoECSSResult, error) {
	return TwoECSSCtx(opts.Ctx, g, w, WithRng(opts.Rng), func(c *Config) {
		c.Diameter, c.SamplingBoost, c.Workers = opts.Diameter, opts.LogFactor, opts.Workers
		c.DistributedAccounting, c.Tree = opts.Distributed, opts.Tree
	})
}

// --- Serving ------------------------------------------------------------------
//
// The serving layer converts the batch reproduction into a query-serving
// system: one Snapshot holds the expensive artifacts (shortcuts + derived
// shortcut-MST), built once; a Server answers the whole application family
// concurrently from a pool of reusable executor contexts.

// Snapshot is the immutable serving state: graph + partition + constructed
// shortcuts + derived shortcut-MST, built once and shared read-only.
type Snapshot = serve.Snapshot

// SnapshotOptions configures NewSnapshot.
type SnapshotOptions = serve.SnapshotOptions

// NewSnapshot builds the serving state (shortcut construction, quality
// measurement, distributed shortcut-MST, tree index) once.
//
// Deprecated: use NewSnapshotCtx with functional options — a cold build on a
// large graph runs for seconds and only the v2 path can be canceled.
func NewSnapshot(g *Graph, w Weights, parts [][]NodeID, opts SnapshotOptions) (*Snapshot, error) {
	return NewSnapshotCtx(opts.Ctx, g, w, parts, WithRng(opts.Rng), func(c *Config) {
		c.Diameter, c.SamplingBoost, c.Workers = opts.Diameter, opts.LogFactor, opts.Workers
		c.DilationCutoff, c.MaxRounds = opts.DilationCutoff, opts.MaxRounds
	})
}

// Server answers typed queries against one Snapshot from a pool of reusable
// executor contexts. All methods are safe for concurrent use; every answer
// is deterministic and identical to its single-threaded counterpart.
type Server = serve.Server

// ServerOptions configures NewServer (pool size, batch-scheduler workers,
// query-determinism seed).
type ServerOptions = serve.ServerOptions

// NewServer builds a server over snap.
//
// Deprecated: use NewServerV2 with functional options (WithExecutors,
// WithWorkers, WithServerSeed) and the server's context-first query methods.
func NewServer(snap *Snapshot, opts ServerOptions) *Server {
	// NewServerV2 maps its Config onto exactly this constructor; calling it
	// directly keeps the v1 signature error-free by construction.
	return serve.NewServer(snap, opts)
}

// The serving query family (Corollaries 1.2, 4.2, 4.3 plus quality
// introspection) and its typed answers. Server.ServeBatch groups same-kind
// queries so one scheduler execution serves the whole group.
type (
	// ServeQuery is one typed request; ServeAnswer one typed response.
	ServeQuery  = serve.Query
	ServeAnswer = serve.Answer
	// SSSPQuery asks for approximate SSSP distances through the snapshot's
	// shortcut-MST.
	SSSPQuery  = serve.SSSPQuery
	SSSPAnswer = serve.SSSPAnswer
	// MSTQuery asks for the snapshot's shortcut-MST.
	MSTQuery  = serve.MSTQuery
	MSTAnswer = serve.MSTAnswer
	// MinCutQuery asks for an approximate minimum cut (tree packing seeded
	// with the snapshot's MST).
	MinCutQuery  = serve.MinCutQuery
	MinCutAnswer = serve.MinCutAnswer
	// TwoECSSQuery asks for the approximate 2-ECSS on the snapshot's MST.
	TwoECSSQuery  = serve.TwoECSSQuery
	TwoECSSAnswer = serve.TwoECSSAnswer
	// QualityQuery asks for one part's (congestion, dilation) quality.
	QualityQuery  = serve.QualityQuery
	QualityAnswer = serve.QualityAnswer
	// ServerStats is a point-in-time snapshot of serving counters.
	ServerStats = serve.Stats
)

// --- CONGEST access ------------------------------------------------------------

// CongestStats aggregates simulated rounds and messages.
type CongestStats = congest.Stats

// SchedStats is the random-delay scheduler's exact cost accounting
// (Theorem 2.1): realized rounds, messages, per-edge congestion, and peak
// queueing. It is reported by the distributed shortcut construction
// (DistShortcutResult.SchedStats) and tracked by lcsbench's -json output.
// Every Workers setting threaded through DistShortcutOptions,
// MSTDistOptions, SSSPTreeOptions, TwoECSSOptions, and MinCutApproxOptions
// now drives the scheduler's sharded drain as well as the CONGEST engine,
// with bit-for-bit identical results.
type SchedStats = sched.Stats

// The CONGEST node-programming vocabulary, re-exported so external modules
// can implement their own Programs against RunCongest (the internal package
// rule forbids importing repro/internal/congest directly).
type (
	// CongestMessage is one O(log n)-bit message: a kind tag plus three words.
	CongestMessage = congest.Message
	// CongestInbound is a delivered message tagged with arrival port/sender.
	CongestInbound = congest.Inbound
	// CongestView is a node's local view of the network.
	CongestView = congest.View
	// CongestOutbox stages one round's sends for a node.
	CongestOutbox = congest.Outbox
	// CongestProgram is the behavior of one node.
	CongestProgram = congest.Program
	// CongestFactory creates the program for one node.
	CongestFactory = congest.Factory
)

// CongestOptions configures the unified CONGEST engine: Workers selects the
// execution mode (0/1 = deterministic sequential, k > 1 = sharded pool of k
// workers, negative = one worker per CPU) and MaxRounds bounds a run. All
// modes produce bit-for-bit identical outputs and stats on error-free runs.
type CongestOptions = congest.Options

// CongestEngine executes CONGEST Programs; build one with NewCongestEngine.
type CongestEngine = congest.Engine

// NewCongestEngine returns the engine selected by opts.
func NewCongestEngine(opts CongestOptions) CongestEngine { return congest.NewEngine(opts) }

// RunCongest executes one Program per node of g on the unified CONGEST
// engine, for users who want to run their own Programs (see internal/congest
// docs).
func RunCongest(g *Graph, factory CongestFactory, opts CongestOptions) (CongestStats, []CongestProgram, error) {
	return congest.Run(g, factory, opts)
}

// RunSequential and RunGoroutines are the seed's two engine entry points.
//
// Deprecated: both now delegate to the unified flat-buffer engine; use
// RunCongest (Workers 0 replaces RunSequential, Workers -1 replaces
// RunGoroutines).
var (
	RunSequential = congest.RunSequential
	RunGoroutines = congest.RunGoroutines
)
