package repro

import (
	"context"
	"io"

	"repro/internal/reproerr"
	"repro/internal/serve"
)

// Snapshot persistence: zero-copy save/load of serving state.
//
// A Snapshot built by NewSnapshotCtx (a cold multi-second construction) can
// be persisted once and reopened in milliseconds: SaveSnapshot streams every
// section of the serving state — graph CSR, tree CSR + weights, partition,
// shortcut assignment, tree index, per-part quality cache, derived MST —
// into a versioned, checksummed, 64-byte-aligned container, and
// LoadSnapshotCtx mmaps the file and rebuilds the Snapshot by slicing the
// mapping, with zero parse of the bulk arrays. A loaded snapshot answers
// every query family bit-identically to the one that was saved, including
// continuing a delta chain: ApplyDeltaCtx on a loaded snapshot equals
// ApplyDeltaCtx on the original.
//
// The file carries the snapshot's generation (its position in the delta
// chain) and sampling seed, so a builder node can construct or repair once
// and ship bytes to replicas, which swap them under live traffic with
// SwapSnapshotFromFileCtx — stale or replayed files (same seed, generation
// not newer than the serving snapshot's) are rejected without disturbing
// the current epoch.
//
// A mmap-backed Snapshot keeps the file mapping alive until Close; the
// mapping is read-only, so the snapshot's immutability guarantees carry
// over. Close is safe on any snapshot (built ones are no-ops) and must not
// race in-flight queries — retire the snapshot from its Store first.

// LoadOptions re-exports the serving layer's load knobs for callers that
// use serve directly; the facade entry points derive them from WithMmap and
// WithSnapshotVerify.
type LoadOptions = serve.LoadOptions

// SaveSnapshot writes snap to path in the versioned binary snapshot format,
// atomically: the bytes stream through a temp file in path's directory and
// rename into place, so a crashed save never leaves a torn file where a
// replica might load it. No options apply.
func SaveSnapshot(path string, snap *Snapshot) error {
	return serve.WriteSnapshotFile(path, snap)
}

// WriteSnapshot streams snap's persistent form to w (the io.WriterTo form
// of SaveSnapshot, for callers shipping bytes over a socket rather than
// through a file).
func WriteSnapshot(w io.Writer, snap *Snapshot) (int64, error) {
	return snap.WriteTo(w)
}

// LoadSnapshot opens a persisted snapshot from path: mmap by default
// (WithMmap(false) forces the portable heap read), with full checksum and
// structural verification by default (WithSnapshotVerify(false) skips the
// deep scans for trusted artifacts — corrupt bytes then surface as wrong
// answers, not errors). Rejections are *Error: KindCorrupt for damaged
// bytes, KindInvalidInput for version/shape mismatches. Close the returned
// snapshot to release the mapping.
func LoadSnapshot(path string, opts ...Option) (*Snapshot, error) {
	return LoadSnapshotCtx(context.Background(), path, opts...)
}

// LoadSnapshotCtx is LoadSnapshot under ctx. The open itself is
// milliseconds-scale; ctx is checked before the open and again before the
// (O(n+m) when verifying) assembly returns, so a canceled load never hands
// back a snapshot.
func LoadSnapshotCtx(ctx context.Context, path string, opts ...Option) (*Snapshot, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	if err := reproerr.CtxCheck("repro.LoadSnapshot", ctx); err != nil {
		return nil, err
	}
	sn, err := serve.LoadSnapshot(path, cfg.loadOptions())
	if err != nil {
		return nil, err
	}
	if err := reproerr.CtxCheck("repro.LoadSnapshot", ctx); err != nil {
		sn.Close()
		return nil, err
	}
	return sn, nil
}

// ReadSnapshot decodes a persisted snapshot from a byte stream (the
// shipped-bytes counterpart of LoadSnapshotCtx; no mmap, WithSnapshotVerify
// applies).
func ReadSnapshot(r io.Reader, opts ...Option) (*Snapshot, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.ReadSnapshot(r, cfg.loadOptions())
}

// SwapSnapshotFromFileCtx loads a persisted snapshot from path and hot-swaps
// it into store under live traffic — the replica side of the builder-ships-
// bytes protocol. The load is rejected (KindInvalidInput, store untouched)
// when the file is stale: same sampling seed as the serving snapshot but a
// generation that is not newer, which catches replayed and out-of-order
// ships. On a nil error the returned retired snapshot has fully drained —
// no query is executing against it anymore — so the caller may Close it to
// release its mapping. (Store.SwapFromFile is the non-draining form.)
func SwapSnapshotFromFileCtx(ctx context.Context, store *Store, path string, opts ...Option) (retired *Snapshot, err error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return store.SwapFromFileCtx(ctx, path, cfg.loadOptions())
}

func (c *Config) loadOptions() serve.LoadOptions {
	return serve.LoadOptions{NoMmap: c.NoMmap, SkipVerify: c.SkipSnapshotVerify, Metrics: c.Metrics}
}
