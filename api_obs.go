package repro

import (
	"net/http"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Observability: the zero-allocation metrics and tracing surface of the
// serving stack.
//
// A Metrics registry collects atomic counters, gauges, log-spaced latency
// histograms, and a bounded ring of per-query trace records from every
// layer it is attached to (WithMetrics on servers, stores, and snapshot
// loads). Instrument writes are lock-free atomic arithmetic on
// preallocated state — the warm serve paths stay at their CI-enforced
// 0 allocs/op with a live registry attached. Expose a registry three ways:
//
//	reg := repro.NewMetrics()
//	srv, _ := repro.NewServerV2(snap, repro.WithMetrics(reg))
//	...
//	reg.WritePrometheus(os.Stdout)        // text exposition, no deps
//	reg.WriteJSON(os.Stdout)              // JSON snapshot incl. traces
//	http.Handle("/metrics", repro.MetricsHandler(reg))
//
// See DESIGN.md "Observability" for the metric inventory and which layer
// owns each series.

// Metrics is an instrument registry (see internal/obs). The zero value is
// not usable — construct with NewMetrics. A nil *Metrics everywhere means
// "uninstrumented" and costs one predictable branch per call site.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time JSON-serializable copy of a registry:
// counters, gauges, histograms with precomputed p50/p99/p999, and the
// retained query traces.
type MetricsSnapshot = obs.Snapshot

// QueryTrace is one decoded per-query trace record: kind, epoch and
// generation served, kernel chosen, batch size after coalescing, queue
// wait and execution nanoseconds, and the outcome.
type QueryTrace = obs.QueryTrace

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// MetricsHandler returns an http.Handler serving reg: Prometheus text
// exposition by default, the JSON snapshot under ?format=json.
func MetricsHandler(reg *Metrics) http.Handler { return obs.Handler(reg) }

// RecordCost folds an operation's Cost into reg: simulated rounds and
// messages plus the realized scheduler stats of its scheduled phases. The
// construction engines are observability-free by design — callers bridge
// the Cost they already return:
//
//	snap, _ := repro.NewSnapshotCtx(ctx, g, w, parts, repro.WithSeed(42))
//	repro.RecordCost(reg, snap.Cost())
func RecordCost(reg *Metrics, c Cost) { serve.RecordCost(reg, c) }
