package repro_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

// TestGatewayFacade drives the facade end to end: NewGateway over a
// store-backed v2 server, one wire query, the taxonomy status helpers, and
// the shared-registry metrics surface.
func TestGatewayFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g, err := repro.ClusterChain(300, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := repro.VoronoiParts(g, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := repro.NewSnapshotCtx(context.Background(), g, repro.UniformWeights(g, rng), parts,
		repro.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	reg := repro.NewMetrics()
	store, err := repro.NewStoreV2(snap, repro.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := repro.NewStoreServerV2(store, repro.WithMetrics(reg), repro.WithServerSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	gw, err := repro.NewGateway(srv,
		repro.WithQueueDepth(16),
		repro.WithBatchWindow(time.Millisecond),
		repro.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"kind":"sssp","source":0}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("query status %d: %s", resp.StatusCode, raw)
	}

	admin := httptest.NewServer(gw.AdminHandler())
	defer admin.Close()
	mresp, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"lcs_gateway_requests_total", "lcs_serve_latency_ns"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// The taxonomy's wire mapping, via the facade.
	if got := repro.HTTPStatus(repro.KindBudgetExceeded); got != 429 {
		t.Fatalf("HTTPStatus(KindBudgetExceeded) = %d", got)
	}
	if got := repro.HTTPStatusOf(nil); got != 200 {
		t.Fatalf("HTTPStatusOf(nil) = %d", got)
	}

	// Invalid options surface as KindInvalidInput at construction.
	if _, err := repro.NewGateway(srv, repro.WithQueueDepth(-1)); repro.ErrorKindOf(err) != repro.KindInvalidInput {
		t.Fatalf("negative queue depth: %v", err)
	}
	if _, err := repro.NewGateway(nil); err == nil {
		t.Fatal("nil server accepted")
	}
}
