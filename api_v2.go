package repro

import (
	"context"

	"repro/internal/congest"
	"repro/internal/cost"
	"repro/internal/mincut"
	"repro/internal/mst"
	"repro/internal/serve"
	"repro/internal/shortcut"
	"repro/internal/sssp"
	"repro/internal/twoecss"
)

// API v2: context-first entry points over one functional-option vocabulary.
//
// Every long-running operation takes a context.Context first and a list of
// Options last; cancellation is cooperative and checked at round
// granularity (every CONGEST round barrier, every scheduler drain step,
// every executor checkout), so a canceled call returns within one round
// with a *Error of KindCanceled/KindDeadline that also satisfies
// errors.Is(err, context.Canceled) / context.DeadlineExceeded. Randomness
// comes from WithSeed (splitmix64-derived, equal seeds ⇒ bit-identical
// results) or WithRng (v1 interop). Results carry the unified Cost.
//
// The v1 entry points (BuildShortcuts, MSTDistributed, …) remain as thin
// deprecated adapters over these, pinning behavioral equivalence.

// Cost is the unified v2 cost accounting, embedded in every result type:
// simulated rounds and messages, realized scheduler stats, and wall time.
type Cost = cost.Cost

// BuildShortcutsCtx runs the centralized sampling construction of Section 2
// under ctx. Requires WithSeed or WithRng.
func BuildShortcutsCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*Shortcuts, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.Build(g, p, shortcut.Options{
		Diameter:  cfg.Diameter,
		Reps:      cfg.Reps,
		LogFactor: cfg.SamplingBoost,
		Rng:       cfg.rng(),
		Ctx:       ctx,
	})
}

// BuildShortcutsDistributedCtx runs the full distributed pipeline of
// Section 2 on the CONGEST simulator under ctx, cancelable at every
// simulated round and scheduler drain step. Requires WithSeed or WithRng.
func BuildShortcutsDistributedCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*DistShortcutResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.BuildDistributed(g, p, shortcut.DistOptions{
		Rng:                 cfg.rng(),
		LogFactor:           cfg.SamplingBoost,
		Reps:                cfg.Reps,
		Workers:             cfg.Workers,
		DepthFactor:         cfg.DepthFactor,
		KnownDiameter:       cfg.KnownDiameter,
		MaxRounds:           cfg.MaxRounds,
		CongestionCapFactor: cfg.CongestionCap,
		Ctx:                 ctx,
	})
}

// BuildShortcutsDeterministicCtx runs the derandomized variant under ctx
// (experiment A4; no randomness required).
func BuildShortcutsDeterministicCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*Shortcuts, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.BuildDeterministic(g, p, shortcut.Options{
		Diameter:  cfg.Diameter,
		Reps:      cfg.Reps,
		LogFactor: cfg.SamplingBoost,
		Rng:       cfg.rng(),
		Ctx:       ctx,
	})
}

// BuildShortcutsLocalCtx runs the locality-restricted variant under ctx
// (experiment A5). Requires WithSeed or WithRng; WithRadius bounds the
// sampling horizon.
func BuildShortcutsLocalCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*Shortcuts, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.BuildLocal(g, p, shortcut.LocalOptions{
		Options: shortcut.Options{
			Diameter:  cfg.Diameter,
			Reps:      cfg.Reps,
			LogFactor: cfg.SamplingBoost,
			Rng:       cfg.rng(),
			Ctx:       ctx,
		},
		Radius: cfg.Radius,
	})
}

// MSTDistributedCtx computes the MST with Borůvka phases through
// low-congestion shortcuts (Corollary 1.2) under ctx. Requires WithSeed or
// WithRng.
func MSTDistributedCtx(ctx context.Context, g *Graph, w Weights, opts ...Option) (*MSTDistResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return mst.Distributed(g, w, cfg.mstOptions(ctx))
}

func (c *Config) mstOptions(ctx context.Context) mst.DistOptions {
	return mst.DistOptions{
		Rng:                  c.rng(),
		Diameter:             c.Diameter,
		LogFactor:            c.SamplingBoost,
		Baseline:             c.Baseline,
		SimulateConstruction: c.SimulateConstruction,
		Workers:              c.Workers,
		DepthFactor:          c.DepthFactor,
		MaxRounds:            c.MaxRounds,
		Ctx:                  ctx,
	}
}

// SSSPApproxCtx computes approximate SSSP distances through the
// shortcut-MST (Corollary 4.2 shape) under ctx. Requires WithSeed or
// WithRng.
func SSSPApproxCtx(ctx context.Context, g *Graph, w Weights, src NodeID, opts ...Option) (*SSSPTreeResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return sssp.TreeApprox(g, w, src, sssp.TreeOptions{
		Rng:       cfg.rng(),
		Diameter:  cfg.Diameter,
		LogFactor: cfg.SamplingBoost,
		Workers:   cfg.Workers,
		MaxRounds: cfg.MaxRounds,
		Ctx:       ctx,
	})
}

// MinCutApproxCtx approximates the minimum cut via greedy tree packing over
// the shortcut-MST under ctx. WithEps tightens the approximation (WithTrees
// sets the packed count explicitly and wins); WithTree seeds the packing
// with a prebuilt tree. Requires WithSeed or WithRng.
func MinCutApproxCtx(ctx context.Context, g *Graph, w Weights, opts ...Option) (*MinCutApproxResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return mincut.Approx(g, w, mincut.ApproxOptions{
		Rng:         cfg.rng(),
		Trees:       cfg.mincutTrees(g.NumNodes()),
		Diameter:    cfg.Diameter,
		LogFactor:   cfg.SamplingBoost,
		Distributed: cfg.DistributedAccounting,
		Workers:     cfg.Workers,
		FirstTree:   cfg.Tree,
		Ctx:         ctx,
	})
}

// TwoECSSCtx computes the approximate minimum-weight 2-ECSS under ctx
// (Corollary 4.3 shape). Requires WithSeed or WithRng unless WithTree
// supplies a prebuilt spanning tree — the shared v2 validation that
// replaced twoecss's v1 conditional-Rng special case.
func TwoECSSCtx(ctx context.Context, g *Graph, w Weights, opts ...Option) (*TwoECSSResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return twoecss.Approx(g, w, twoecss.Options{
		Rng:         cfg.rng(),
		Diameter:    cfg.Diameter,
		LogFactor:   cfg.SamplingBoost,
		Distributed: cfg.DistributedAccounting,
		Workers:     cfg.Workers,
		Tree:        cfg.Tree,
		Ctx:         ctx,
	})
}

// NewSnapshotCtx builds the serving state under ctx: partition validation,
// centralized shortcut construction, quality measurement, distributed
// shortcut-MST, and tree indexing, cancelable between sampling steps,
// between parts of the quality sweep, and at every simulated round — a cold
// multi-second build aborts within one round of cancellation. Requires
// WithSeed or WithRng.
func NewSnapshotCtx(ctx context.Context, g *Graph, w Weights, parts [][]NodeID, opts ...Option) (*Snapshot, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.NewSnapshot(g, w, parts, serve.SnapshotOptions{
		Rng:            cfg.rng(),
		Diameter:       cfg.Diameter,
		LogFactor:      cfg.SamplingBoost,
		Workers:        cfg.Workers,
		DilationCutoff: cfg.DilationCutoff,
		MaxRounds:      cfg.MaxRounds,
		Ctx:            ctx,
	})
}

// NewServerV2 builds a server over snap from functional options
// (WithExecutors, WithWorkers, WithSeed / WithServerSeed). The server's
// context-first query methods — ServeCtx, ServeBatchCtx, ServeSSSPIntoCtx —
// gate executor checkout on the context and thread it into every scheduled
// phase; a canceled query leaves the pool fully usable.
func NewServerV2(snap *Snapshot, opts ...Option) (*Server, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.NewServer(snap, serve.ServerOptions{
		Executors: cfg.Executors,
		Workers:   cfg.Workers,
		Seed:      cfg.serverSeed(),
	}), nil
}

// RunCongestCtx executes one Program per node of g on the unified CONGEST
// engine under ctx, cancelable at every round barrier.
func RunCongestCtx(ctx context.Context, g *Graph, factory CongestFactory, opts ...Option) (CongestStats, []CongestProgram, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return CongestStats{}, nil, err
	}
	return congest.Run(g, factory, congest.Options{
		Workers:   cfg.Workers,
		MaxRounds: cfg.MaxRounds,
		Ctx:       ctx,
	})
}
