package repro

import (
	"context"

	"repro/internal/congest"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/mst"
	"repro/internal/serve"
	"repro/internal/shortcut"
	"repro/internal/sssp"
	"repro/internal/twoecss"
)

// API v2: context-first entry points over one functional-option vocabulary.
//
// Every long-running operation takes a context.Context first and a list of
// Options last; cancellation is cooperative and checked at round
// granularity (every CONGEST round barrier, every scheduler drain step,
// every executor checkout), so a canceled call returns within one round
// with a *Error of KindCanceled/KindDeadline that also satisfies
// errors.Is(err, context.Canceled) / context.DeadlineExceeded. Randomness
// comes from WithSeed (splitmix64-derived, equal seeds ⇒ bit-identical
// results) or WithRng (v1 interop). Results carry the unified Cost.
//
// The v1 entry points (BuildShortcuts, MSTDistributed, …) remain as thin
// deprecated adapters over these, pinning behavioral equivalence.

// Cost is the unified v2 cost accounting, embedded in every result type:
// simulated rounds and messages, realized scheduler stats, and wall time.
type Cost = cost.Cost

// BuildShortcutsCtx runs the centralized sampling construction of Section 2
// under ctx. Requires WithSeed or WithRng.
func BuildShortcutsCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*Shortcuts, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.Build(g, p, shortcut.Options{
		Diameter:  cfg.Diameter,
		Reps:      cfg.Reps,
		LogFactor: cfg.SamplingBoost,
		Rng:       cfg.rng(),
		Ctx:       ctx,
	})
}

// BuildShortcutsDistributedCtx runs the full distributed pipeline of
// Section 2 on the CONGEST simulator under ctx, cancelable at every
// simulated round and scheduler drain step. Requires WithSeed or WithRng.
func BuildShortcutsDistributedCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*DistShortcutResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.BuildDistributed(g, p, shortcut.DistOptions{
		Rng:                 cfg.rng(),
		LogFactor:           cfg.SamplingBoost,
		Reps:                cfg.Reps,
		Workers:             cfg.Workers,
		DepthFactor:         cfg.DepthFactor,
		KnownDiameter:       cfg.KnownDiameter,
		MaxRounds:           cfg.MaxRounds,
		CongestionCapFactor: cfg.CongestionCap,
		Ctx:                 ctx,
	})
}

// BuildShortcutsDeterministicCtx runs the derandomized variant under ctx
// (experiment A4; no randomness required).
func BuildShortcutsDeterministicCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*Shortcuts, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.BuildDeterministic(g, p, shortcut.Options{
		Diameter:  cfg.Diameter,
		Reps:      cfg.Reps,
		LogFactor: cfg.SamplingBoost,
		Rng:       cfg.rng(),
		Ctx:       ctx,
	})
}

// BuildShortcutsLocalCtx runs the locality-restricted variant under ctx
// (experiment A5). Requires WithSeed or WithRng; WithRadius bounds the
// sampling horizon.
func BuildShortcutsLocalCtx(ctx context.Context, g *Graph, p *Partition, opts ...Option) (*Shortcuts, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return shortcut.BuildLocal(g, p, shortcut.LocalOptions{
		Options: shortcut.Options{
			Diameter:  cfg.Diameter,
			Reps:      cfg.Reps,
			LogFactor: cfg.SamplingBoost,
			Rng:       cfg.rng(),
			Ctx:       ctx,
		},
		Radius: cfg.Radius,
	})
}

// MSTDistributedCtx computes the MST with Borůvka phases through
// low-congestion shortcuts (Corollary 1.2) under ctx. Requires WithSeed or
// WithRng.
func MSTDistributedCtx(ctx context.Context, g *Graph, w Weights, opts ...Option) (*MSTDistResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return mst.Distributed(g, w, cfg.mstOptions(ctx))
}

func (c *Config) mstOptions(ctx context.Context) mst.DistOptions {
	return mst.DistOptions{
		Rng:                  c.rng(),
		Diameter:             c.Diameter,
		LogFactor:            c.SamplingBoost,
		Baseline:             c.Baseline,
		SimulateConstruction: c.SimulateConstruction,
		Workers:              c.Workers,
		DepthFactor:          c.DepthFactor,
		MaxRounds:            c.MaxRounds,
		Ctx:                  ctx,
	}
}

// SSSPApproxCtx computes approximate SSSP distances through the
// shortcut-MST (Corollary 4.2 shape) under ctx. Requires WithSeed or
// WithRng.
func SSSPApproxCtx(ctx context.Context, g *Graph, w Weights, src NodeID, opts ...Option) (*SSSPTreeResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return sssp.TreeApprox(g, w, src, sssp.TreeOptions{
		Rng:       cfg.rng(),
		Diameter:  cfg.Diameter,
		LogFactor: cfg.SamplingBoost,
		Workers:   cfg.Workers,
		MaxRounds: cfg.MaxRounds,
		Ctx:       ctx,
	})
}

// MinCutApproxCtx approximates the minimum cut via greedy tree packing over
// the shortcut-MST under ctx. WithEps tightens the approximation (WithTrees
// sets the packed count explicitly and wins); WithTree seeds the packing
// with a prebuilt tree. Requires WithSeed or WithRng.
func MinCutApproxCtx(ctx context.Context, g *Graph, w Weights, opts ...Option) (*MinCutApproxResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return mincut.Approx(g, w, mincut.ApproxOptions{
		Rng:         cfg.rng(),
		Trees:       cfg.mincutTrees(g.NumNodes()),
		Diameter:    cfg.Diameter,
		LogFactor:   cfg.SamplingBoost,
		Distributed: cfg.DistributedAccounting,
		Workers:     cfg.Workers,
		FirstTree:   cfg.Tree,
		Ctx:         ctx,
	})
}

// TwoECSSCtx computes the approximate minimum-weight 2-ECSS under ctx
// (Corollary 4.3 shape). Requires WithSeed or WithRng unless WithTree
// supplies a prebuilt spanning tree — the shared v2 validation that
// replaced twoecss's v1 conditional-Rng special case.
func TwoECSSCtx(ctx context.Context, g *Graph, w Weights, opts ...Option) (*TwoECSSResult, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return twoecss.Approx(g, w, twoecss.Options{
		Rng:         cfg.rng(),
		Diameter:    cfg.Diameter,
		LogFactor:   cfg.SamplingBoost,
		Distributed: cfg.DistributedAccounting,
		Workers:     cfg.Workers,
		Tree:        cfg.Tree,
		Ctx:         ctx,
	})
}

// NewSnapshotCtx builds the serving state under ctx: partition validation,
// centralized shortcut construction, quality measurement, distributed
// shortcut-MST, and tree indexing, cancelable between sampling steps,
// between parts of the quality sweep, and at every simulated round — a cold
// multi-second build aborts within one round of cancellation. Requires
// WithSeed or WithRng.
func NewSnapshotCtx(ctx context.Context, g *Graph, w Weights, parts [][]NodeID, opts ...Option) (*Snapshot, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.NewSnapshot(g, w, parts, serve.SnapshotOptions{
		Rng:            cfg.rng(),
		Diameter:       cfg.Diameter,
		LogFactor:      cfg.SamplingBoost,
		Workers:        cfg.Workers,
		DilationCutoff: cfg.DilationCutoff,
		MaxRounds:      cfg.MaxRounds,
		Ctx:            ctx,
	})
}

// NewServerV2 builds a server over snap from functional options
// (WithExecutors, WithWorkers, WithSeed / WithServerSeed, WithBitParallel,
// WithMetrics, WithProfileLabels). The server's
// context-first query methods — ServeCtx, ServeBatchCtx, ServeSSSPIntoCtx —
// gate executor checkout on the context and thread it into every scheduled
// phase; a canceled query leaves the pool fully usable.
func NewServerV2(snap *Snapshot, opts ...Option) (*Server, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.NewServer(snap, cfg.serverOptions()), nil
}

func (c *Config) serverOptions() serve.ServerOptions {
	return serve.ServerOptions{
		Executors:          c.Executors,
		Workers:            c.Workers,
		Seed:               c.serverSeed(),
		DisableBitParallel: c.DisableBitParallel,
		Metrics:            c.Metrics,
		TraceDepth:         c.TraceDepth,
		ProfileLabels:      c.ProfileLabels,
	}
}

// Dynamic graphs: incremental snapshot updates and hot-swap serving.
//
// A Snapshot built by NewSnapshotCtx is one link of a delta chain:
// ApplyDeltaCtx absorbs a batch of edge mutations by part-local repair and
// returns a new Snapshot whose query answers are bit-identical to a
// from-scratch NewSnapshotCtx on the post-delta graph with the same seed —
// at a cost that scales with the parts the delta touches, not with n. A
// Store hot-swaps the active snapshot under live traffic; NewStoreServerV2
// serves whatever the store holds, pinning the epoch per query.

// Delta is a batch of edge mutations over a fixed vertex set: deletions
// (by endpoints) applied before insertions (with weights).
type Delta = graph.Delta

// DeltaEdge is one edge insertion of a Delta.
type DeltaEdge = graph.DeltaEdge

// DeltaRemap records how ApplyGraphDelta renumbered edges (EdgeIDs are
// canonical, so mutations shift them); per-edge annotations migrate through
// it.
type DeltaRemap = graph.DeltaRemap

// ApplyGraphDelta applies a batch of edge mutations to a graph, returning
// the new graph (bit-identical to building the post-delta edge set from
// scratch), migrated weights, and the edge-ID remap. The input graph is
// never modified. Snapshot holders normally use ApplyDeltaCtx, which does
// this and repairs the serving state in one step.
func ApplyGraphDelta(g *Graph, w Weights, d Delta) (*Graph, Weights, *DeltaRemap, error) {
	return graph.ApplyDelta(g, w, d)
}

// Store owns a chain of epoch-tagged Snapshots and atomically swaps the
// active one under live traffic; retired snapshots drain lock-free (see
// Store.SwapCtx).
type Store = serve.Store

// RepairInfo describes the incremental update that produced a repaired
// snapshot (Snapshot.Repair).
type RepairInfo = serve.RepairInfo

// NewStore creates a store serving snap at epoch 1.
func NewStore(snap *Snapshot) *Store { return serve.NewStore(snap) }

// NewStoreV2 is NewStore from functional options: WithMetrics attaches an
// observability registry recording swap count/latency, drain waits, lease
// pins, and stale-generation rejections. Share the registry with the
// servers over this store so one exposition covers the whole stack.
func NewStoreV2(snap *Snapshot, opts ...Option) (*Store, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.NewStoreWith(snap, serve.StoreOptions{Metrics: cfg.Metrics}), nil
}

// ApplyDeltaCtx applies a batch of edge mutations to a snapshot's graph and
// repairs the serving state part-locally under ctx: only the parts whose
// shortcut subgraphs the delta invalidates are re-sampled and re-verified
// (random-delay scheduling, reusing pooled scheduler state), the per-part
// quality record is patched, and the shortcut-MST is re-derived through the
// centralized Borůvka mirror. The result is bit-identical, query for query,
// to a from-scratch NewSnapshotCtx on the post-delta graph with the same
// seed and WithDiameter(snap.Diameter()) — the repair pins the base build's
// diameter, so a rebuild that lets the diameter re-estimate from the
// mutated graph may derive different (equally valid) parameters. Its
// Cost() reports the repair's price. WithWorkers and WithMaxRounds apply;
// the sampling seed is inherited from the snapshot's build, so no WithSeed
// is needed.
func ApplyDeltaCtx(ctx context.Context, snap *Snapshot, delta Delta, opts ...Option) (*Snapshot, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.ApplyDelta(ctx, snap, delta, serve.DeltaOptions{
		Workers:   cfg.Workers,
		MaxRounds: cfg.MaxRounds,
	})
}

// NewStoreServerV2 builds a server over a store from functional options
// (WithExecutors, WithWorkers, WithSeed / WithServerSeed,
// WithBitParallel): every query is
// answered against the store's snapshot current at that query's executor
// checkout, with the epoch pinned until the answer is extracted — a
// concurrent Store.Swap never tears an answer or a batch.
func NewStoreServerV2(store *Store, opts ...Option) (*Server, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return nil, err
	}
	return serve.NewStoreServer(store, cfg.serverOptions()), nil
}

// RunCongestCtx executes one Program per node of g on the unified CONGEST
// engine under ctx, cancelable at every round barrier.
func RunCongestCtx(ctx context.Context, g *Graph, factory CongestFactory, opts ...Option) (CongestStats, []CongestProgram, error) {
	cfg, err := NewConfig(opts...)
	if err != nil {
		return CongestStats{}, nil, err
	}
	return congest.Run(g, factory, congest.Options{
		Workers:   cfg.Workers,
		MaxRounds: cfg.MaxRounds,
		Ctx:       ctx,
	})
}
