// Socialnet: distributed MST on a six-degrees-style network — the workload
// motivating the paper's introduction. Compares the shortcut-powered
// Borůvka (Corollary 1.2, ˜O(kD) rounds) against the generic
// Ghaffari–Haeupler O(D+√n) baseline, and verifies both against Kruskal.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))
	const (
		n        = 3000
		diameter = 6 // six degrees of separation
	)
	g, err := repro.ClusterChain(n, diameter, rng)
	if err != nil {
		return err
	}
	w := repro.UniformWeights(g, rng)
	fmt.Printf("social network: %v, diameter %d\n", g, diameter)
	fmt.Printf("theory scale  : kD = %.1f vs sqrt(n) = %.1f\n",
		repro.KD(g.NumNodes(), diameter), math.Sqrt(float64(g.NumNodes())))

	exact, err := repro.MST(g, w)
	if err != nil {
		return err
	}
	exactWeight := w.Total(exact)

	ours, err := repro.MSTDistributed(g, w, repro.MSTDistOptions{
		Rng: rng, Diameter: diameter, LogFactor: 0.3,
	})
	if err != nil {
		return err
	}
	baseline, err := repro.MSTDistributed(g, w, repro.MSTDistOptions{
		Rng: rng, Diameter: diameter, Baseline: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("Kruskal weight        : %.3f\n", exactWeight)
	fmt.Printf("shortcut MST          : weight %.3f, %d phases, %d rounds, %d messages\n",
		ours.Weight, ours.Phases, ours.Rounds, ours.Messages)
	fmt.Printf("GH16-baseline MST     : weight %.3f, %d phases, %d rounds, %d messages\n",
		baseline.Weight, baseline.Phases, baseline.Rounds, baseline.Messages)
	if math.Abs(ours.Weight-exactWeight) > 1e-6 || math.Abs(baseline.Weight-exactWeight) > 1e-6 {
		return fmt.Errorf("distributed MST weight mismatch")
	}
	fmt.Printf("round ratio (ours/GH) : %.2f\n", float64(ours.Rounds)/float64(baseline.Rounds))
	return nil
}
