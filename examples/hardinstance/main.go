// Hardinstance: the full distributed pipeline of Theorem 1.1 on an
// Elkin/Lotker-style lower-bound-shaped graph — the instance family where
// generic O(√n)-quality shortcuts are wasteful and the paper's
// ˜O(n^((D-2)/(2D-2))) construction shines. Runs the CONGEST-simulated
// construction (with diameter guessing) and reports rounds, messages, and
// the verified quality, against the GH16 baseline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(3))
	const diameter = 4
	hi, err := repro.NewHardInstance(2000, diameter, rng)
	if err != nil {
		return err
	}
	g := hi.G
	p, err := repro.NewPartition(g, hi.Paths)
	if err != nil {
		return err
	}
	fmt.Printf("hard instance : %v, diameter %d, %d paths of length %d\n",
		g, diameter, len(hi.Paths), hi.PathLen)
	fmt.Printf("theory scale  : kD = %.1f, sqrt(n) = %.1f\n",
		repro.KD(g.NumNodes(), diameter), math.Sqrt(float64(g.NumNodes())))

	// The fully simulated distributed construction, including the
	// diameter-guessing loop (nodes only know a 2-approximation).
	res, err := repro.BuildShortcutsDistributed(g, p, repro.DistShortcutOptions{
		Rng:       rng,
		LogFactor: 0.3,
	})
	if err != nil {
		return err
	}
	q, err := res.S.Dilation(0)
	if err != nil {
		return err
	}
	fmt.Printf("distributed   : %d rounds, %d messages, %d guesses (accepted D=%d)\n",
		res.Rounds, res.Messages, res.Guesses, res.Diameter)
	fmt.Printf("quality       : %v  (c+d = %d)\n", q, q.Sum())

	gh := repro.GhaffariHaeuplerShortcuts(p, 0)
	ghQ, err := gh.Dilation(0)
	if err != nil {
		return err
	}
	fmt.Printf("GH16 baseline : %v  (c+d = %d)\n", ghQ, ghQ.Sum())
	fmt.Printf("improvement   : %.2fx better quality\n", float64(ghQ.Sum())/float64(q.Sum()))
	return nil
}
