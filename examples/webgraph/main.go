// Webgraph: approximate minimum cut on a web-like small-diameter graph.
// The paper's introduction cites the world-wide web (billions of pages,
// diameter ≤ 19) as the motivating topology. We build a scaled-down
// two-community web: each community is a hub-and-spoke cluster with a ring
// and random chords (every page has degree ≥ 3), and the communities are
// joined by a handful of cross links — so the global minimum cut is the
// community boundary. The tree-packing approximation (Corollary 1.2's
// reduction) is compared to the exact Stoer–Wagner value.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildCommunity(b *repro.GraphBuilder, base, size int, rng *rand.Rand) {
	hub := repro.NodeID(base)
	for i := 1; i < size; i++ {
		v := repro.NodeID(base + i)
		// Spoke to the hub, ring to the neighbor, plus one random chord:
		// every page ends with degree ≥ 3.
		if err := b.AddEdge(hub, v); err != nil {
			log.Fatal(err)
		}
		next := repro.NodeID(base + 1 + i%(size-1))
		b.TryAddEdge(v, next)
		// Two random chords: every page ends with degree ≥ 4 w.h.p., above
		// the community boundary, so the boundary is the global minimum cut.
		b.TryAddEdge(v, repro.NodeID(base+1+rng.Intn(size-1)))
		b.TryAddEdge(v, repro.NodeID(base+1+rng.Intn(size-1)))
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	const (
		half       = 350 // exact oracle is O(n^3); keep it tractable
		crossLinks = 4
		totalNodes = 2 * half
	)
	b := repro.NewGraphBuilder(totalNodes)
	buildCommunity(b, 0, half, rng)
	buildCommunity(b, half, half, rng)
	added := 0
	for added < crossLinks {
		u := repro.NodeID(1 + rng.Intn(half-1))
		v := repro.NodeID(half + 1 + rng.Intn(half-1))
		if b.TryAddEdge(u, v) {
			added++
		}
	}
	g := b.Build()
	w := make(repro.Weights, g.NumEdges())
	for e := range w {
		w[e] = 1
	}
	fmt.Printf("web-like graph: %v, two communities, %d cross links\n", g, crossLinks)

	exact, side, err := repro.MinCut(g, w)
	if err != nil {
		return err
	}
	fmt.Printf("exact min cut : %.0f (side size %d)\n", exact, len(side))

	res, err := repro.MinCutApprox(g, w, repro.MinCutApproxOptions{
		Rng:         rng,
		Distributed: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("approx cut    : %.0f with %d packed trees (%d rounds, %d messages)\n",
		res.Value, res.Trees, res.Rounds, res.Messages)
	fmt.Printf("ratio         : %.3f (guarantee: <= 2(1+eps) w.h.p.)\n", res.Value/exact)
	return nil
}
