// Gateway: put the serving stack on the network. One process builds a
// Snapshot, wraps a store-backed Server in repro.NewGateway, and serves the
// wire surface lcsserve deploys — POST /v1/query, /v1/batch, /v1/delta on
// the serving listener, /metrics + /healthz + /readyz on the admin listener
// — then this same process plays the client: wire queries, an error mapped
// through the taxonomy's HTTP table, a delta applied over HTTP under live
// traffic, and a metrics scrape.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(1))

	// Build once; serve forever. Same construction as examples/serving.
	const diameter = 6
	g, err := repro.ClusterChain(4000, diameter, rng)
	if err != nil {
		return err
	}
	parts, err := repro.VoronoiParts(g, 32, rng)
	if err != nil {
		return err
	}
	snap, err := repro.NewSnapshotCtx(context.Background(), g, repro.UniformWeights(g, rng), parts,
		repro.WithSeed(1), repro.WithDiameter(diameter))
	if err != nil {
		return err
	}

	// Store-backed server + gateway on one shared registry: /v1/delta can
	// hot-swap under traffic, and /metrics exposes both the gateway's
	// instrument family (admission, shedding, coalescing) and the serving
	// layer's (per-kind latency, kernel routing).
	reg := repro.NewMetrics()
	store, err := repro.NewStoreV2(snap, repro.WithMetrics(reg))
	if err != nil {
		return err
	}
	srv, err := repro.NewStoreServerV2(store, repro.WithExecutors(4), repro.WithMetrics(reg))
	if err != nil {
		return err
	}
	gw, err := repro.NewGateway(srv,
		repro.WithQueueDepth(64),                    // admission slots; overflow sheds 429
		repro.WithBatchWindow(2*time.Millisecond),   // coalesce concurrent sssp queries
		repro.WithMetrics(reg))
	if err != nil {
		return err
	}
	defer gw.Close()

	serveLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	adminLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveSrv := &http.Server{Handler: gw.Handler()}
	adminSrv := &http.Server{Handler: gw.AdminHandler()}
	go serveSrv.Serve(serveLn)
	go adminSrv.Serve(adminLn)
	defer serveSrv.Close()
	defer adminSrv.Close()
	base := "http://" + serveLn.Addr().String()
	admin := "http://" + adminLn.Addr().String()
	fmt.Printf("gateway: serving on %s (admin %s)\n", serveLn.Addr(), adminLn.Addr())

	// A wire query: kinds are "sssp" | "mst" | "mincut" | "twoecss" |
	// "quality"; sssp distances come back as JSON numbers with null for
	// unreachable (+Inf), bit-exact on round-trip.
	status, body, err := post(base+"/v1/query", `{"kind":"mst"}`)
	if err != nil {
		return err
	}
	fmt.Printf("query: mst -> %d, %d bytes\n", status, len(body))

	// Taxonomy errors map onto statuses via repro.HTTPStatus: invalid input
	// 400, shed 429, canceled 499, deadline 504. The body names the kind.
	status, body, err = post(base+"/v1/query", `{"kind":"nope"}`)
	if err != nil {
		return err
	}
	fmt.Printf("query: unknown kind -> %d %s\n", status, strings.TrimSpace(body))

	// A delta over the wire: part-local repair + hot swap, one request.
	// Queries racing this swap keep their pinned epoch — no torn answers.
	status, body, err = post(base+"/v1/delta", `{"insert":[{"u":5,"v":3777,"w":0.01}]}`)
	if err != nil {
		return err
	}
	fmt.Printf("delta: -> %d %s\n", status, strings.TrimSpace(body))

	// The admin mux: readiness for load balancers, Prometheus exposition
	// for scrapes.
	resp, err := http.Get(admin + "/metrics")
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "lcs_gateway_requests_total") ||
			strings.HasPrefix(line, "lcs_store_swaps_total") {
			fmt.Printf("metrics: %s\n", line)
		}
	}
	return nil
}

func post(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(raw), nil
}
