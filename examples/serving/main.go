// Serving: build one immutable Snapshot (shortcuts + shortcut-MST), then
// answer the whole application family — SSSP, MST, min cut, 2-ECSS, quality
// — concurrently from a pooled Server, including a batched submission that
// shares one scheduler execution across same-kind queries.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()

	const diameter = 6
	g, err := repro.ClusterChain(20_000, diameter, rng)
	if err != nil {
		return err
	}
	w := repro.UniformWeights(g, rng)
	parts, err := repro.VoronoiParts(g, 48, rng)
	if err != nil {
		return err
	}

	// Pay the construction once — context-first, so a serving process can
	// bound or abort the cold build (a canceled build returns within one
	// simulated round with errors.Is(err, context.Canceled) == true).
	snap, err := repro.NewSnapshotCtx(ctx, g, w, parts,
		repro.WithSeed(1), repro.WithDiameter(diameter), repro.WithSamplingBoost(0.3))
	if err != nil {
		return err
	}
	bc := snap.Cost()
	fmt.Printf("snapshot: built in %v (simulated: %d rounds, %d messages, %d MST phases)\n",
		bc.Wall.Round(time.Millisecond), bc.Rounds, bc.Messages, snap.Phases())
	fmt.Printf("snapshot: quality %v, MST weight %.1f\n", snap.Quality(), snap.TreeWeight())

	srv, err := repro.NewServerV2(snap, repro.WithExecutors(4))
	if err != nil {
		return err
	}
	start := time.Now()

	// Concurrent single queries: every answer is deterministic and
	// bit-identical to its single-threaded counterpart.
	start = time.Now()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				src := repro.NodeID((c*100 + i) % g.NumNodes())
				if _, err := srv.ServeCtx(ctx, repro.SSSPQuery{Source: src}); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("serve: 400 SSSP queries from 4 clients in %v\n",
		time.Since(start).Round(time.Millisecond))

	// A mixed batch: the three SSSP queries share ONE scheduler execution.
	// The batch context is checked once per drain round, so a canceled
	// client aborts the shared execution within one round and leaves the
	// executor pool untouched for other clients.
	answers, err := srv.ServeBatchCtx(ctx, []repro.ServeQuery{
		repro.SSSPQuery{Source: 0},
		repro.SSSPQuery{Source: 7},
		repro.SSSPQuery{Source: 42},
		repro.MSTQuery{},
		repro.MinCutQuery{},
		repro.QualityQuery{Part: 0},
	})
	if err != nil {
		return err
	}
	sssp := answers[0].(*repro.SSSPAnswer)
	fmt.Printf("batch: sssp(0) charged %d shared rounds, %d messages\n", sssp.Rounds, sssp.Messages)
	mc := answers[4].(*repro.MinCutAnswer)
	fmt.Printf("batch: min cut %.4g (%d packed trees, MST as tree #1)\n", mc.Value, mc.Trees)
	qa := answers[5].(*repro.QualityAnswer)
	fmt.Printf("batch: part 0 quality %v\n", qa.Quality)

	// Query kinds whose preconditions the workload violates fail cleanly,
	// per query: a cluster chain has bridge edges, so no 2-ECSS exists.
	if _, err := srv.Serve(repro.TwoECSSQuery{}); err != nil {
		fmt.Printf("serve: 2-ECSS correctly refused: %v\n", err)
	}

	// Dynamic update: absorb an edge delta by part-local repair (the result
	// is bit-identical to rebuilding from scratch on the mutated graph, at a
	// fraction of the cost) and hot-swap it under live traffic through a
	// Store. Queries pin their epoch at checkout, so the swap never tears an
	// in-flight answer; SwapCtx returns once the old epoch has drained.
	store := repro.NewStore(snap)
	ssrv, err := repro.NewStoreServerV2(store, repro.WithExecutors(4))
	if err != nil {
		return err
	}
	delta := repro.Delta{Insert: []repro.DeltaEdge{
		{U: 11, V: 4093, W: 0.01},
		{U: 2048, V: 9999, W: 0.02},
	}}
	updStart := time.Now()
	next, err := repro.ApplyDeltaCtx(ctx, store.Snapshot(), delta)
	if err != nil {
		return err
	}
	fmt.Printf("delta: repaired %d parts in %v (generation %d; cold build was %v)\n",
		len(next.Repair().Touched), time.Since(updStart).Round(time.Millisecond),
		next.Generation(), bc.Wall.Round(time.Millisecond))
	if _, err := store.SwapCtx(ctx, next); err != nil {
		return err
	}
	a, err := ssrv.ServeCtx(ctx, repro.MSTQuery{})
	if err != nil {
		return err
	}
	fmt.Printf("swap: epoch %d live, MST weight now %.1f\n",
		store.Epoch(), a.(*repro.MSTAnswer).Weight)

	fmt.Printf("stats: %+v\n", srv.Stats())
	return nil
}
