// Quickstart: build a constant-diameter graph, partition it, compute
// low-congestion shortcuts, and compare the quality against the trivial
// (no-shortcut) assignment.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(1))

	// A 4000-node network of diameter exactly 6 (think "six degrees of
	// separation").
	const diameter = 6
	g, err := repro.ClusterChain(4000, diameter, rng)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %v, diameter %d, kD = %.1f\n", g, diameter, repro.KD(g.NumNodes(), diameter))

	// Carve the nodes into 32 connected parts.
	parts, err := repro.VoronoiParts(g, 32, rng)
	if err != nil {
		return err
	}
	p, err := repro.NewPartition(g, parts)
	if err != nil {
		return err
	}

	// Without shortcuts, some part has a large induced diameter.
	trivial, err := repro.TrivialShortcuts(p).Dilation(0)
	if err != nil {
		return err
	}
	fmt.Printf("trivial   : %v\n", trivial)

	// With the paper's construction, congestion and dilation are both
	// ˜O(kD) = ˜O(n^((D-2)/(2D-2))).
	s, err := repro.BuildShortcuts(g, p, repro.ShortcutOptions{
		Diameter:  diameter,
		LogFactor: 0.3,
		Rng:       rng,
	})
	if err != nil {
		return err
	}
	q, err := s.Dilation(0)
	if err != nil {
		return err
	}
	fmt.Printf("shortcuts : %v  (quality c+d = %d, |H| = %d edges)\n",
		q, q.Sum(), s.TotalShortcutEdges())
	return nil
}
