// Quickstart: build a constant-diameter graph, partition it, compute
// low-congestion shortcuts with the context-first v2 API, and compare the
// quality against the trivial (no-shortcut) assignment.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The generators still take an explicit rng; the shortcut construction
	// itself is seeded through the v2 option (WithSeed) below.
	rng := rand.New(rand.NewSource(1))

	// Every v2 entry point is context-first: a deadline (or Ctrl-C wired to
	// signal.NotifyContext) aborts the construction within one round.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// A 4000-node network of diameter exactly 6 (think "six degrees of
	// separation").
	const diameter = 6
	g, err := repro.ClusterChain(4000, diameter, rng)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %v, diameter %d, kD = %.1f\n", g, diameter, repro.KD(g.NumNodes(), diameter))

	// Carve the nodes into 32 connected parts.
	parts, err := repro.VoronoiParts(g, 32, rng)
	if err != nil {
		return err
	}
	p, err := repro.NewPartition(g, parts)
	if err != nil {
		return err
	}

	// Without shortcuts, some part has a large induced diameter.
	trivial, err := repro.TrivialShortcuts(p).Dilation(0)
	if err != nil {
		return err
	}
	fmt.Printf("trivial   : %v\n", trivial)

	// With the paper's construction, congestion and dilation are both
	// ˜O(kD) = ˜O(n^((D-2)/(2D-2))). WithSeed makes the run bit-reproducible
	// without plumbing a *rand.Rand.
	s, err := repro.BuildShortcutsCtx(ctx, g, p,
		repro.WithSeed(1),
		repro.WithDiameter(diameter),
		repro.WithSamplingBoost(0.3),
	)
	if err != nil {
		return err
	}
	q, err := s.Dilation(0)
	if err != nil {
		return err
	}
	fmt.Printf("shortcuts : %v  (quality c+d = %d, |H| = %d edges)\n",
		q, q.Sum(), s.TotalShortcutEdges())
	return nil
}
