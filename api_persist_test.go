package repro_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro"
	"repro/internal/gen"
)

// TestPersistFacade exercises the save/load surface end to end through the
// public API: SaveSnapshot → LoadSnapshotCtx under each option combination
// must reproduce bit-identical answers, WriteSnapshot/ReadSnapshot must
// round-trip the same bytes streamwise, SwapSnapshotFromFileCtx must ship
// the file into a live store and reject a replay, and a canceled load must
// return the context error. (The exhaustive per-query-family differential
// coverage lives in internal/serve.)
func TestPersistFacade(t *testing.T) {
	fx := makeV2Fixture(t)
	ctx := context.Background()
	snap, err := repro.NewSnapshotCtx(ctx, fx.g, fx.w, fx.parts,
		repro.WithSeed(7), repro.WithDiameter(5))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := repro.NewServerV2(snap, repro.WithExecutors(1), repro.WithServerSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.Serve(repro.SSSPQuery{Source: 9})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "snap.lcsnap")
	if err := repro.SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}

	check := func(tag string, loaded *repro.Snapshot) {
		t.Helper()
		defer loaded.Close()
		lsrv, err := repro.NewServerV2(loaded, repro.WithExecutors(1), repro.WithServerSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		got, err := lsrv.Serve(repro.SSSPQuery{Source: 9})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: loaded snapshot answer differs", tag)
		}
	}

	for _, tc := range []struct {
		tag  string
		opts []repro.Option
	}{
		{"default", nil},
		{"heap", []repro.Option{repro.WithMmap(false)}},
		{"noverify", []repro.Option{repro.WithSnapshotVerify(false)}},
	} {
		loaded, err := repro.LoadSnapshotCtx(ctx, path, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.tag, err)
		}
		check(tc.tag, loaded)
	}

	var buf bytes.Buffer
	if _, err := repro.WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	streamed, err := repro.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	check("stream", streamed)

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := repro.LoadSnapshotCtx(canceled, path); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled load: got %v", err)
	}

	// Shipping: a store serving the built snapshot accepts a file only when
	// its generation advances the chain, so re-shipping the active
	// generation is a rejected replay, while a repaired generation swaps in.
	st := repro.NewStore(snap)
	if _, err := repro.SwapSnapshotFromFileCtx(ctx, st, path); err == nil {
		t.Error("replay of the active generation was accepted")
	} else if repro.ErrorKindOf(err) != repro.KindInvalidInput {
		t.Errorf("replay rejection: wrong kind: %v", err)
	}
	d, err := gen.InsertDelta(fx.g, 6, rngAt(31))
	if err != nil {
		t.Fatal(err)
	}
	next, err := repro.ApplyDeltaCtx(ctx, snap, d)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "snap2.lcsnap")
	if err := repro.SaveSnapshot(path2, next); err != nil {
		t.Fatal(err)
	}
	retired, err := repro.SwapSnapshotFromFileCtx(ctx, st, path2)
	if err != nil {
		t.Fatal(err)
	}
	if retired != snap {
		t.Error("swap retired the wrong snapshot")
	}
	if got := st.Snapshot().Generation(); got != next.Generation() {
		t.Errorf("store generation %d, want %d", got, next.Generation())
	}
}
