// Benchmarks regenerating every experiment of EXPERIMENTS.md (E1–E13,
// A1–A3) at reduced "quick" scale, plus micro-benchmarks of the hot paths.
// Full-scale tables are produced by cmd/lcsbench.
package repro_test

import (
	"math/rand"
	"testing"

	"repro"
	"repro/internal/congest"
	"repro/internal/expt"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/shortcut"
)

func benchCfg(b *testing.B) expt.Config {
	b.Helper()
	return expt.Config{Quick: true, Seed: 42}.WithDefaults()
}

func runExperiment(b *testing.B, fn func(expt.Config) (*expt.Table, error)) {
	cfg := benchCfg(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkE1Quality(b *testing.B)       { runExperiment(b, expt.E1Quality) }
func BenchmarkE2Rounds(b *testing.B)        { runExperiment(b, expt.E2Rounds) }
func BenchmarkE3Congestion(b *testing.B)    { runExperiment(b, expt.E3Congestion) }
func BenchmarkE4Dilation(b *testing.B)      { runExperiment(b, expt.E4Dilation) }
func BenchmarkE5Baselines(b *testing.B)     { runExperiment(b, expt.E5Baselines) }
func BenchmarkE6MST(b *testing.B)           { runExperiment(b, expt.E6MST) }
func BenchmarkE7MinCut(b *testing.B)        { runExperiment(b, expt.E7MinCut) }
func BenchmarkE8Messages(b *testing.B)      { runExperiment(b, expt.E8Messages) }
func BenchmarkE9OddEven(b *testing.B)       { runExperiment(b, expt.E9OddEven) }
func BenchmarkE10Scheduler(b *testing.B)    { runExperiment(b, expt.E10Scheduler) }
func BenchmarkE11Walks(b *testing.B)        { runExperiment(b, expt.E11Walks) }
func BenchmarkE12SSSP(b *testing.B)         { runExperiment(b, expt.E12SSSP) }
func BenchmarkE13TwoECSS(b *testing.B)      { runExperiment(b, expt.E13TwoECSS) }
func BenchmarkA1Repetitions(b *testing.B)   { runExperiment(b, expt.A1Repetitions) }
func BenchmarkA2Scheduling(b *testing.B)    { runExperiment(b, expt.A2Scheduling) }
func BenchmarkA4Deterministic(b *testing.B) { runExperiment(b, expt.A4Deterministic) }
func BenchmarkA5Local(b *testing.B)         { runExperiment(b, expt.A5Local) }

// BenchmarkA3Engines compares the two CONGEST engines on an identical BFS
// workload (the engine-equivalence ablation).
func BenchmarkA3Engines(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := gen.ErdosRenyi(2000, 0.002, rng)
	for _, eng := range []struct {
		name string
		opts congest.Options
	}{
		{"sequential", congest.Options{MaxRounds: 1 << 20}},
		{"pool", congest.Options{Workers: -1, MaxRounds: 1 << 20}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			engine := congest.NewEngine(eng.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := congest.RunBFS(g, 0, engine); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks of the hot paths ---------------------------------------

func BenchmarkCentralizedBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	hi, err := gen.NewHardInstance(4000, 4, 0, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	p, err := shortcut.NewPartition(hi.G, hi.Paths)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shortcut.Build(hi.G, p, shortcut.Options{
			Diameter: 4, LogFactor: 0.3, Rng: rng,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCongestionMeasure(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	hi, err := gen.NewHardInstance(4000, 4, 0, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	p, err := shortcut.NewPartition(hi.G, hi.Paths)
	if err != nil {
		b.Fatal(err)
	}
	s, err := shortcut.Build(hi.G, p, shortcut.Options{Diameter: 4, LogFactor: 0.3, Rng: rng})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Congestion() < 1 {
			b.Fatal("congestion")
		}
	}
}

func BenchmarkDilationMeasure(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	hi, err := gen.NewHardInstance(2000, 4, 0, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	p, err := shortcut.NewPartition(hi.G, hi.Paths)
	if err != nil {
		b.Fatal(err)
	}
	s, err := shortcut.Build(hi.G, p, shortcut.Options{Diameter: 4, LogFactor: 0.3, Rng: rng})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Dilation(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, err := gen.ClusterChain(4000, 6, rng)
	if err != nil {
		b.Fatal(err)
	}
	tasks := make([]sched.BFSTask, 16)
	for i := range tasks {
		tasks[i] = sched.BFSTask{Root: repro.NodeID(rng.Intn(g.NumNodes())), DepthLimit: 8}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.ParallelBFS(g, tasks, sched.Options{MaxDelay: 16, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, err := repro.ClusterChain(100000, 8, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := graph.BFS(g, 0); len(res.Reached) != g.NumNodes() {
			b.Fatal("BFS did not span")
		}
	}
}
