package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

func TestQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := repro.ClusterChain(800, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := repro.VoronoiParts(g, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.NewPartition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := repro.BuildShortcuts(g, p, repro.ShortcutOptions{Diameter: 5, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Dilation(0)
	if err != nil {
		t.Fatal(err)
	}
	trivial := repro.TrivialShortcuts(p)
	tq, err := trivial.Dilation(0)
	if err != nil {
		t.Fatal(err)
	}
	if q.DilationHi > tq.DilationHi {
		t.Errorf("shortcuts made dilation worse: %d vs trivial %d", q.DilationHi, tq.DilationHi)
	}
}

func TestFacadeMST(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := repro.ClusterChain(300, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := repro.UniformWeights(g, rng)
	exact, err := repro.MST(g, w)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := repro.MSTDistributed(g, w, repro.MSTDistOptions{Rng: rng, Diameter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Tree) != len(exact) {
		t.Errorf("tree sizes differ: %d vs %d", len(dist.Tree), len(exact))
	}
	if diff := dist.Weight - w.Total(exact); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("weights differ: %f vs %f", dist.Weight, w.Total(exact))
	}
}

func TestFacadeMinCutAndSSSP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := repro.ClusterChain(120, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := repro.UniformWeights(g, rng)
	exact, _, err := repro.MinCut(g, w)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := repro.MinCutApprox(g, w, repro.MinCutApproxOptions{Rng: rng, Trees: 8})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Value < exact-1e-9 {
		t.Errorf("approx cut %f below exact %f", approx.Value, exact)
	}

	dists, err := repro.SSSP(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := repro.SSSPApprox(g, w, 0, repro.SSSPTreeOptions{Rng: rng, Diameter: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range dists {
		if ap.Dist[v] < dists[v]-1e-9 {
			t.Errorf("approx dist[%d]=%f below exact %f", v, ap.Dist[v], dists[v])
		}
	}
}

func TestFacadeHardInstanceAndDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	hi, err := repro.NewHardInstance(600, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.NewPartition(hi.G, hi.Paths)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.BuildShortcutsDistributed(hi.G, p, repro.DistShortcutOptions{
		Rng: rng, KnownDiameter: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Error("no rounds recorded")
	}
	if repro.KD(600, 4) <= 1 {
		t.Error("KD(600,4) should exceed 1")
	}
}

func TestFacadeServing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := repro.ClusterChain(500, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := repro.UniformWeights(g, rng)
	parts, err := repro.VoronoiParts(g, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := repro.NewSnapshot(g, w, parts, repro.SnapshotOptions{Rng: rng, Diameter: 5})
	if err != nil {
		t.Fatal(err)
	}
	srv := repro.NewServer(snap, repro.ServerOptions{Executors: 2})

	exactTree, err := repro.MST(g, w)
	if err != nil {
		t.Fatal(err)
	}
	a, err := srv.Serve(repro.MSTQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.(*repro.MSTAnswer); got.Weight-w.Total(exactTree) > 1e-9 || w.Total(exactTree)-got.Weight > 1e-9 {
		t.Errorf("served MST weight %f vs Kruskal %f", got.Weight, w.Total(exactTree))
	}

	exact, err := repro.SSSP(g, w, 7)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := srv.ServeBatch([]repro.ServeQuery{
		repro.SSSPQuery{Source: 7},
		repro.SSSPQuery{Source: 123},
		repro.QualityQuery{Part: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sa := answers[0].(*repro.SSSPAnswer)
	for v := range exact {
		if sa.Dist[v] < exact[v]-1e-9 {
			t.Fatalf("served dist[%d]=%f below exact %f", v, sa.Dist[v], exact[v])
		}
	}
	if q := answers[2].(*repro.QualityAnswer); q.Quality.Congestion != snap.Quality().Congestion {
		t.Errorf("served congestion %d vs snapshot %d", q.Quality.Congestion, snap.Quality().Congestion)
	}
	if st := srv.Stats(); st.Total() != 4 || st.Batches != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestFacadeGraphBuilder(t *testing.T) {
	b := repro.NewGraphBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("built %s", g)
	}
	g2, err := repro.FromEdges(2, [][2]repro.NodeID{{0, 1}})
	if err != nil || g2.NumEdges() != 1 {
		t.Errorf("FromEdges: %v", err)
	}
}
